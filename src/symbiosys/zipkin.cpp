#include "symbiosys/zipkin.hpp"

#include <cinttypes>
#include <cstdio>

#include "symbiosys/breadcrumb.hpp"

namespace sym::prof {
namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::uint64_t span_id(const Span& sp) {
  // Deterministic span id from (breadcrumb, base_order).
  std::uint64_t h = sp.breadcrumb * 0x9E3779B97F4A7C15ULL;
  h ^= sp.base_order + 0x100001B3ULL;
  h *= 0xBF58476D1CE4E5B9ULL;
  return h == 0 ? 1 : h;
}

void append_span_json(std::string& out, const RequestTrace& rt,
                      const Span& sp, bool& first) {
  if (!first) out += ",\n";
  first = false;
  const auto& reg = NameRegistry::global();
  const std::string name = reg.lookup(leaf_of(sp.breadcrumb));
  // Parent linkage is resolved once in TraceSummary::build (Span::parent);
  // the export no longer re-scans the span list per span.
  const Span* parent =
      sp.parent >= 0 ? &rt.spans[static_cast<std::size_t>(sp.parent)]
                     : nullptr;

  char buf[512];
  // Zipkin v2 timestamps/durations are in microseconds.
  const double ts_us = static_cast<double>(sp.origin_start) / 1e3;
  const double dur_us = static_cast<double>(sp.duration()) / 1e3;
  std::snprintf(buf, sizeof(buf),
                "  {\"traceId\": \"%s\", \"id\": \"%s\",%s%s%s \"name\": "
                "\"%s\", \"timestamp\": %.0f, \"duration\": %.0f, "
                "\"kind\": \"CLIENT\", \"localEndpoint\": {\"serviceName\": "
                "\"ep-%u\"}, \"remoteEndpoint\": {\"serviceName\": "
                "\"ep-%u\"}, \"tags\": {\"breadcrumb\": \"%s\", "
                "\"blocked_ults\": \"%u\", \"ofi_events_read\": \"%.0f\"}}",
                hex64(sp.request_id).c_str(), hex64(span_id(sp)).c_str(),
                parent != nullptr ? " \"parentId\": \"" : "",
                parent != nullptr ? hex64(span_id(*parent)).c_str() : "",
                parent != nullptr ? "\"," : "", name.c_str(), ts_us, dur_us,
                sp.origin_ep, sp.target_ep,
                hex64(sp.breadcrumb).c_str(), sp.target_blocked_ults,
                static_cast<double>(sp.origin_ofi_events_read));
  out += buf;
}

}  // namespace

// Every span serializes from a 512-byte stack buffer, so pre-sizing the
// output to ~512 bytes/span makes the append loop allocation-free.
constexpr std::size_t kSpanJsonReserve = 512;

std::string to_zipkin_json(const RequestTrace& rt) {
  std::string out;
  out.reserve(8 + rt.spans.size() * kSpanJsonReserve);
  out += "[\n";
  bool first = true;
  for (const auto& sp : rt.spans) append_span_json(out, rt, sp, first);
  out += "\n]\n";
  return out;
}

std::string to_zipkin_json(const TraceSummary& summary) {
  std::string out;
  out.reserve(8 + summary.total_spans * kSpanJsonReserve);
  out += "[\n";
  bool first = true;
  for (const auto& rt : summary.requests) {
    for (const auto& sp : rt.spans) append_span_json(out, rt, sp, first);
  }
  out += "\n]\n";
  return out;
}

}  // namespace sym::prof
