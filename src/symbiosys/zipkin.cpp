#include "symbiosys/zipkin.hpp"

#include <cinttypes>
#include <cstdio>

#include "symbiosys/breadcrumb.hpp"

namespace sym::prof {
namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::uint64_t span_id(const Span& sp) {
  // Deterministic span id from (breadcrumb, base_order).
  std::uint64_t h = sp.breadcrumb * 0x9E3779B97F4A7C15ULL;
  h ^= sp.base_order + 0x100001B3ULL;
  h *= 0xBF58476D1CE4E5B9ULL;
  return h == 0 ? 1 : h;
}

/// Find the enclosing parent span: same request, breadcrumb equal to this
/// span's ancestry with the leaf removed, and a time interval containing
/// this span's start. Among candidates, the latest-starting one wins.
const Span* find_parent(const RequestTrace& rt, const Span& child) {
  const Breadcrumb parent_bc = child.breadcrumb >> 16;
  if (parent_bc == 0) return nullptr;
  const Span* best = nullptr;
  for (const auto& sp : rt.spans) {
    if (sp.breadcrumb != parent_bc) continue;
    if (sp.origin_start > child.origin_start) continue;
    if (sp.origin_end != 0 && sp.origin_end < child.origin_start) continue;
    if (best == nullptr || sp.origin_start > best->origin_start) best = &sp;
  }
  return best;
}

void append_span_json(std::string& out, const RequestTrace& rt,
                      const Span& sp, bool& first) {
  if (!first) out += ",\n";
  first = false;
  const auto& reg = NameRegistry::global();
  const std::string name = reg.lookup(leaf_of(sp.breadcrumb));
  const Span* parent = find_parent(rt, sp);

  char buf[512];
  // Zipkin v2 timestamps/durations are in microseconds.
  const double ts_us = static_cast<double>(sp.origin_start) / 1e3;
  const double dur_us = static_cast<double>(sp.duration()) / 1e3;
  std::snprintf(buf, sizeof(buf),
                "  {\"traceId\": \"%s\", \"id\": \"%s\",%s%s%s \"name\": "
                "\"%s\", \"timestamp\": %.0f, \"duration\": %.0f, "
                "\"kind\": \"CLIENT\", \"localEndpoint\": {\"serviceName\": "
                "\"ep-%u\"}, \"remoteEndpoint\": {\"serviceName\": "
                "\"ep-%u\"}, \"tags\": {\"breadcrumb\": \"%s\", "
                "\"blocked_ults\": \"%u\", \"ofi_events_read\": \"%.0f\"}}",
                hex64(sp.request_id).c_str(), hex64(span_id(sp)).c_str(),
                parent != nullptr ? " \"parentId\": \"" : "",
                parent != nullptr ? hex64(span_id(*parent)).c_str() : "",
                parent != nullptr ? "\"," : "", name.c_str(), ts_us, dur_us,
                sp.origin_ep, sp.target_ep,
                hex64(sp.breadcrumb).c_str(), sp.target_blocked_ults,
                static_cast<double>(sp.origin_ofi_events_read));
  out += buf;
}

}  // namespace

std::string to_zipkin_json(const RequestTrace& rt) {
  std::string out = "[\n";
  bool first = true;
  for (const auto& sp : rt.spans) append_span_json(out, rt, sp, first);
  out += "\n]\n";
  return out;
}

std::string to_zipkin_json(const TraceSummary& summary) {
  std::string out = "[\n";
  bool first = true;
  for (const auto& rt : summary.requests) {
    for (const auto& sp : rt.spans) append_span_json(out, rt, sp, first);
  }
  out += "\n]\n";
  return out;
}

}  // namespace sym::prof
