#include "symbiosys/records.hpp"

#include "symbiosys/breadcrumb.hpp"

namespace sym::prof {

// ---------------------------------------------------------------------------
// breadcrumb.hpp implementation
// ---------------------------------------------------------------------------

std::vector<std::uint16_t> components(Breadcrumb bc) {
  std::vector<std::uint16_t> out;
  if (bc == 0) return out;
  // Walk from the most significant non-zero 16-bit group down to the leaf.
  bool started = false;
  for (int shift = 48; shift >= 0; shift -= 16) {
    const auto part = static_cast<std::uint16_t>((bc >> shift) & 0xFFFF);
    if (!started && part == 0) continue;
    started = true;
    out.push_back(part);
  }
  return out;
}

int depth(Breadcrumb bc) noexcept {
  int d = 0;
  while (bc != 0) {
    ++d;
    bc >>= 16;
  }
  return d;
}

void NameRegistry::register_name(std::string_view name) {
  // symlint: allow(fiber-blocking) reason=registry is shared across lane
  // worker threads; tiny non-yielding critical section (see breadcrumb.hpp)
  // symlint: allow(may-block) reason=name interning happens at instrument
  // registration, not per event; critical section never yields
  const std::lock_guard<std::mutex> lock(mu_);
  names_.emplace(hash16(name), std::string(name));
}

std::string NameRegistry::lookup(std::uint16_t h) const {
  // symlint: allow(fiber-blocking) reason=registry is shared across lane
  // worker threads; tiny non-yielding critical section (see breadcrumb.hpp)
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = names_.find(h);
  if (it != names_.end()) return it->second;
  return "<0x" + std::to_string(h) + ">";
}

void NameRegistry::clear() {
  // symlint: allow(fiber-blocking) reason=registry is shared across lane
  // worker threads; tiny non-yielding critical section (see breadcrumb.hpp)
  const std::lock_guard<std::mutex> lock(mu_);
  names_.clear();
}

std::string NameRegistry::format(Breadcrumb bc) const {
  const auto parts = components(bc);
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += " => ";
    out += lookup(parts[i]);
  }
  return out.empty() ? "<root>" : out;
}

NameRegistry& NameRegistry::global() {
  // symlint: allow(shared-state-escape) reason=process-wide name interner; internally synchronized by its own mutex and stores names only, no timing state
  static NameRegistry reg;
  return reg;
}

// ---------------------------------------------------------------------------
// enum names
// ---------------------------------------------------------------------------

const char* to_string(Level l) noexcept {
  switch (l) {
    case Level::kOff: return "Baseline";
    case Level::kStage1: return "Stage 1";
    case Level::kStage2: return "Stage 2";
    case Level::kFull: return "Full Support";
  }
  return "?";
}

const char* to_string(Interval iv) noexcept {
  switch (iv) {
    case Interval::kOriginExec: return "origin_execution_time";
    case Interval::kInputSer: return "input_serialization_time";
    case Interval::kInternalRdma: return "target_internal_rdma_transfer_time";
    case Interval::kHandlerWait: return "target_ult_handler_time";
    case Interval::kInputDeser: return "input_deserialization_time";
    case Interval::kTargetExec: return "target_ult_execution_time";
    case Interval::kOutputSer: return "output_serialization_time";
    case Interval::kTargetCallback: return "target_completion_callback_time";
    case Interval::kOriginCallback: return "origin_completion_callback_time";
    case Interval::kOutputDeser: return "output_deserialization_time";
    case Interval::kCount: break;
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Action spans
// ---------------------------------------------------------------------------

std::array<TraceEvent, 4> make_action_span(std::uint64_t request_id,
                                           Breadcrumb breadcrumb,
                                           std::uint32_t self_ep,
                                           sim::TimeNs start_ts,
                                           sim::TimeNs end_ts,
                                           std::uint64_t lamport_base) {
  std::array<TraceEvent, 4> out{};
  constexpr TraceEventKind kKinds[4] = {
      TraceEventKind::kOriginStart, TraceEventKind::kTargetStart,
      TraceEventKind::kTargetEnd, TraceEventKind::kOriginEnd};
  for (std::uint32_t i = 0; i < 4; ++i) {
    TraceEvent& ev = out[i];
    ev.request_id = request_id;
    ev.order = i;  // base_order 0: the action is its own root span
    ev.kind = kKinds[i];
    ev.breadcrumb = breadcrumb;
    ev.self_ep = self_ep;
    ev.peer_ep = self_ep;  // self-targeted: the actor adapts itself
    ev.local_ts = i < 2 ? start_ts : end_ts;
    ev.lamport = lamport_base + i + 1;
  }
  return out;
}

CallpathStats& ProfileStore::stats_for_slow(const CallpathKey& key,
                                            std::size_t slot) {
  CallpathStats& s = data_.find_or_insert(key);
  if (data_.generation() != memo_generation_) {
    // A rehash moved every slot; drop all cached pointers before
    // re-publishing the one find_or_insert just returned.
    for (auto& p : memo_vals_) p = nullptr;
    memo_generation_ = data_.generation();
  }
  memo_vals_[slot] = &s;
  memo_keys_[slot] = key;
  return s;
}

const char* to_string(TraceEventKind k) noexcept {
  switch (k) {
    case TraceEventKind::kOriginStart: return "origin_start";
    case TraceEventKind::kOriginEnd: return "origin_end";
    case TraceEventKind::kTargetStart: return "target_start";
    case TraceEventKind::kTargetEnd: return "target_end";
  }
  return "?";
}

}  // namespace sym::prof
