#include "symbiosys/analysis.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <set>
#include <unordered_map>

namespace sym::prof {
namespace {

std::string format_ns(double ns) {
  char buf[64];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3f s", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3f us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
  }
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// ProfileSummary
// ---------------------------------------------------------------------------

double CallpathBreakdown::unaccounted_ns() const noexcept {
  // Everything measured on the wire path except the origin execution time
  // itself. kOriginExec (t1->t14) is the envelope; the measured components
  // are the Table III intervals.
  double measured = 0;
  for (int i = 0; i < static_cast<int>(Interval::kCount); ++i) {
    if (i == static_cast<int>(Interval::kOriginExec)) continue;
    measured += interval_sum_ns[i];
  }
  const double gap = cumulative_ns - measured;
  return gap > 0 ? gap : 0;
}

ProfileSummary ProfileSummary::build(
    const std::vector<const ProfileStore*>& stores) {
  // Global analysis: merge every entity's records per breadcrumb.
  std::unordered_map<Breadcrumb, CallpathBreakdown> merged;
  std::unordered_map<Breadcrumb, std::map<std::uint32_t, double>> per_origin;
  std::unordered_map<Breadcrumb, std::map<std::uint32_t, double>> per_target;

  for (const ProfileStore* store : stores) {
    for (const auto& [key, stats] : store->entries()) {
      auto& cb = merged[key.breadcrumb];
      cb.breadcrumb = key.breadcrumb;
      for (int i = 0; i < static_cast<int>(Interval::kCount); ++i) {
        const auto& iv = stats.intervals[i];
        cb.interval_sum_ns[i] += iv.sum_ns;
        cb.interval_count[i] += iv.count;
      }
      const auto& origin_exec =
          stats.at(Interval::kOriginExec);
      if (key.side == Side::kOrigin) {
        cb.call_count += origin_exec.count;
        cb.cumulative_ns += origin_exec.sum_ns;
        per_origin[key.breadcrumb][key.self_ep] += origin_exec.sum_ns;
      } else {
        per_target[key.breadcrumb][key.self_ep] +=
            stats.at(Interval::kTargetExec).sum_ns;
      }
    }
  }

  // Emit in sorted-breadcrumb order: the report ordering and the
  // floating-point accumulation order of total_ns must not depend on the
  // hash layout of `merged` (or on the order the stores were passed in).
  ProfileSummary out;
  out.callpaths.reserve(merged.size());
  for (const Breadcrumb bc : sorted_keys(merged)) {
    CallpathBreakdown& cb = merged[bc];
    cb.name = NameRegistry::global().format(bc);
    const std::map<std::uint32_t, double>& origin_ns = per_origin[bc];
    for (const auto& [ep, ns] : origin_ns) {
      cb.per_origin_ns.emplace_back(ep, ns);
    }
    const std::map<std::uint32_t, double>& target_ns = per_target[bc];
    for (const auto& [ep, ns] : target_ns) {
      cb.per_target_ns.emplace_back(ep, ns);
    }
    out.total_ns += cb.cumulative_ns;
    out.callpaths.push_back(std::move(cb));
  }
  std::sort(out.callpaths.begin(), out.callpaths.end(),
            [](const CallpathBreakdown& a, const CallpathBreakdown& b) {
              if (a.cumulative_ns != b.cumulative_ns) {
                return a.cumulative_ns > b.cumulative_ns;
              }
              return a.breadcrumb < b.breadcrumb;  // deterministic tie-break
            });
  return out;
}

const CallpathBreakdown* ProfileSummary::find_by_leaf(
    const std::string& leaf_name) const {
  const auto leaf = hash16(leaf_name);
  for (const auto& cb : callpaths) {
    if (leaf_of(cb.breadcrumb) == leaf) return &cb;
  }
  return nullptr;
}

std::string ProfileSummary::format(std::size_t top_n) const {
  std::string out;
  // ~1 header + count line + one line per interval per shown callpath.
  out.reserve(128 + std::min(top_n, callpaths.size()) *
                        (static_cast<std::size_t>(Interval::kCount) + 3) * 96);
  out += "=== SYMBIOSYS profile summary: dominant callpaths by cumulative "
         "end-to-end request latency ===\n";
  char line[256];
  std::size_t shown = 0;
  for (const auto& cb : callpaths) {
    if (shown++ >= top_n) break;
    std::snprintf(line, sizeof(line), "[%zu] %s\n", shown, cb.name.c_str());
    out += line;
    std::snprintf(line, sizeof(line),
                  "     calls=%llu  cumulative=%s  origins=%zu  targets=%zu\n",
                  static_cast<unsigned long long>(cb.call_count),
                  format_ns(cb.cumulative_ns).c_str(), cb.per_origin_ns.size(),
                  cb.per_target_ns.size());
    out += line;
    for (int i = 0; i < static_cast<int>(Interval::kCount); ++i) {
      if (i == static_cast<int>(Interval::kOriginExec)) continue;
      if (cb.interval_count[i] == 0) continue;
      std::snprintf(line, sizeof(line), "       %-36s %12s (%5.1f%%)\n",
                    to_string(static_cast<Interval>(i)),
                    format_ns(cb.interval_sum_ns[i]).c_str(),
                    cb.cumulative_ns > 0
                        ? 100.0 * cb.interval_sum_ns[i] / cb.cumulative_ns
                        : 0.0);
      out += line;
    }
    std::snprintf(line, sizeof(line), "       %-36s %12s (%5.1f%%)\n",
                  "unaccounted", format_ns(cb.unaccounted_ns()).c_str(),
                  cb.cumulative_ns > 0
                      ? 100.0 * cb.unaccounted_ns() / cb.cumulative_ns
                      : 0.0);
    out += line;
  }
  return out;
}

// ---------------------------------------------------------------------------
// TraceSummary
// ---------------------------------------------------------------------------

namespace {

/// Key pairing the four events of one span. The emitting side reserves four
/// consecutive order slots per call: origin start = n, target start = n+1,
/// target end = n+2, origin end = n+3.
struct SpanKey {
  std::uint64_t request_id;
  Breadcrumb bc;
  std::uint32_t base_order;
  bool operator<(const SpanKey& o) const {
    if (request_id != o.request_id) return request_id < o.request_id;
    if (bc != o.bc) return bc < o.bc;
    return base_order < o.base_order;
  }
};

std::uint32_t base_order_of(const TraceEvent& ev) {
  switch (ev.kind) {
    case TraceEventKind::kOriginStart: return ev.order;
    case TraceEventKind::kTargetStart: return ev.order - 1;
    case TraceEventKind::kTargetEnd: return ev.order - 2;
    case TraceEventKind::kOriginEnd: return ev.order - 3;
  }
  return ev.order;
}

}  // namespace

TraceSummary TraceSummary::build(
    const std::vector<const TraceStore*>& stores) {
  TraceSummary out;

  // Pass 1: group raw events into spans (uncorrected timestamps).
  std::map<SpanKey, Span> spans;
  std::map<SpanKey, std::array<sim::TimeNs, 4>> raw_ts;  // local clocks
  for (const TraceStore* store : stores) {
    for (const TraceEvent& ev : store->events()) {
      ++out.total_events;
      const SpanKey key{ev.request_id, ev.breadcrumb, base_order_of(ev)};
      Span& sp = spans[key];
      sp.request_id = ev.request_id;
      sp.breadcrumb = ev.breadcrumb;
      sp.base_order = key.base_order;
      auto& ts = raw_ts[key];
      switch (ev.kind) {
        case TraceEventKind::kOriginStart:
          sp.origin_ep = ev.self_ep;
          sp.target_ep = ev.peer_ep;
          ts[0] = ev.local_ts;
          break;
        case TraceEventKind::kTargetStart:
          sp.target_ep = ev.self_ep;
          sp.target_blocked_ults = ev.blocked_ults;
          ts[1] = ev.local_ts;
          break;
        case TraceEventKind::kTargetEnd:
          ts[2] = ev.local_ts;
          break;
        case TraceEventKind::kOriginEnd:
          sp.origin_ofi_events_read = ev.num_ofi_events_read;
          ts[3] = ev.local_ts;
          break;
      }
    }
  }

  // Pass 2: clock-skew estimation. For every (origin, target) endpoint pair
  // with complete spans, the NTP-style symmetric-delay estimate of the
  // target's offset relative to the origin is
  //     theta = ((t5 - t1) - (t14 - t8)) / 2
  // Averaging over spans cancels queueing noise; a BFS over the pair graph
  // anchors every endpoint to the smallest endpoint id (the reference).
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::pair<double, int>>
      pair_theta;
  for (const auto& [key, sp] : spans) {
    const auto& ts = raw_ts[key];
    if (ts[0] == 0 || ts[1] == 0 || ts[2] == 0 || ts[3] == 0) continue;
    if (sp.origin_ep == sp.target_ep) continue;
    const double fwd = static_cast<double>(ts[1]) - static_cast<double>(ts[0]);
    const double bwd = static_cast<double>(ts[3]) - static_cast<double>(ts[2]);
    const double theta = (fwd - bwd) / 2.0;
    auto& acc = pair_theta[{sp.origin_ep, sp.target_ep}];
    acc.first += theta;
    acc.second += 1;
  }

  std::set<std::uint32_t> eps;
  for (const auto& [key, sp] : spans) {
    eps.insert(sp.origin_ep);
    eps.insert(sp.target_ep);
  }
  std::map<std::uint32_t, double>& offset = out.clock_offset_ns;
  if (!eps.empty()) {
    // adjacency with averaged thetas in both directions
    std::map<std::uint32_t, std::vector<std::pair<std::uint32_t, double>>> adj;
    for (const auto& [pair, acc] : pair_theta) {
      const double theta = acc.first / acc.second;
      adj[pair.first].emplace_back(pair.second, theta);
      adj[pair.second].emplace_back(pair.first, -theta);
    }
    // BFS from each yet-unvisited endpoint (reference offset 0).
    for (const auto ref : eps) {
      if (offset.count(ref) != 0) continue;
      offset[ref] = 0;
      std::vector<std::uint32_t> queue{ref};
      while (!queue.empty()) {
        const auto u = queue.back();
        queue.pop_back();
        for (const auto& [v, theta] : adj[u]) {
          if (offset.count(v) != 0) continue;
          offset[v] = offset[u] + theta;
          queue.push_back(v);
        }
      }
    }
  }

  // Pass 3: apply corrections and assemble per-request traces.
  auto corrected = [&](std::uint32_t ep, sim::TimeNs local) -> sim::TimeNs {
    if (local == 0) return 0;
    const auto it = offset.find(ep);
    const double off = it == offset.end() ? 0.0 : it->second;
    const double t = static_cast<double>(local) - off;
    return t < 0 ? 0 : static_cast<sim::TimeNs>(t);
  };

  std::map<std::uint64_t, RequestTrace> by_request;
  for (auto& [key, sp] : spans) {
    const auto& ts = raw_ts[key];
    sp.origin_start = corrected(sp.origin_ep, ts[0]);
    sp.target_start = corrected(sp.target_ep, ts[1]);
    sp.target_end = corrected(sp.target_ep, ts[2]);
    sp.origin_end = corrected(sp.origin_ep, ts[3]);
    auto& rt = by_request[sp.request_id];
    rt.request_id = sp.request_id;
    rt.spans.push_back(sp);
    ++out.total_spans;
  }
  out.requests.reserve(by_request.size());
  for (auto& [rid, rt] : by_request) {
    std::sort(rt.spans.begin(), rt.spans.end(),
              [](const Span& a, const Span& b) {
                if (a.origin_start != b.origin_start) {
                  return a.origin_start < b.origin_start;
                }
                return a.base_order < b.base_order;
              });
    out.request_index.emplace(rid, out.requests.size());
    out.requests.push_back(std::move(rt));
  }

  // Pass 4: resolve parent links once per request. A parent is a span whose
  // breadcrumb is the child's breadcrumb with the leaf popped, that started
  // no later than the child, and whose interval covers the child's start;
  // the latest-starting such span wins. Export paths (zipkin, Gantt) used
  // to re-derive this per span with a full re-scan of the span list.
  for (auto& rt : out.requests) {
    std::unordered_map<Breadcrumb, std::vector<std::size_t>> by_bc;
    by_bc.reserve(rt.spans.size());
    for (std::size_t i = 0; i < rt.spans.size(); ++i) {
      by_bc[rt.spans[i].breadcrumb].push_back(i);
    }
    for (auto& sp : rt.spans) {
      const Breadcrumb parent_bc = sp.breadcrumb >> 16;
      if (parent_bc == 0) continue;
      const auto it = by_bc.find(parent_bc);
      if (it == by_bc.end()) continue;
      // Candidate indices are ascending in origin_start (spans are sorted),
      // so the last candidate not starting after the child is the winner.
      std::int32_t best = -1;
      for (const std::size_t idx : it->second) {
        const Span& cand = rt.spans[idx];
        if (cand.origin_start > sp.origin_start) break;
        if (cand.origin_end != 0 && cand.origin_end < sp.origin_start) {
          continue;
        }
        best = static_cast<std::int32_t>(idx);
      }
      sp.parent = best;
    }
  }
  return out;
}

const RequestTrace* TraceSummary::find(std::uint64_t request_id) const {
  const auto it = request_index.find(request_id);
  if (it == request_index.end()) return nullptr;
  return &requests[it->second];
}

std::string TraceSummary::format_request(const RequestTrace& rt) const {
  std::string out;
  out.reserve(64 + rt.spans.size() * 112);  // one pre-sized line per span
  char line[256];
  std::snprintf(line, sizeof(line), "request %llx: %zu spans\n",
                static_cast<unsigned long long>(rt.request_id),
                rt.spans.size());
  out += line;
  if (rt.spans.empty()) return out;
  const sim::TimeNs t0 = rt.spans.front().origin_start;
  const auto& reg = NameRegistry::global();
  for (const auto& sp : rt.spans) {
    const int indent = 2 * (depth(sp.breadcrumb) - 1);
    std::snprintf(line, sizeof(line),
                  "  %*s%-40s [%10.2f us .. %10.2f us] ep%u -> ep%u\n", indent,
                  "", reg.format(sp.breadcrumb).c_str(),
                  (static_cast<double>(sp.origin_start) -
                   static_cast<double>(t0)) /
                      1e3,
                  (static_cast<double>(sp.origin_end) -
                   static_cast<double>(t0)) /
                      1e3,
                  sp.origin_ep, sp.target_ep);
    out += line;
  }
  return out;
}

// ---------------------------------------------------------------------------
// SysStatsSummary
// ---------------------------------------------------------------------------

SysStatsSummary SysStatsSummary::build(
    const std::vector<std::pair<std::string, const SysStatStore*>>& stores) {
  SysStatsSummary out;
  for (const auto& [name, store] : stores) {
    SysStatsProcessSummary s;
    s.process = name;
    s.samples = store->size();
    for (const auto& row : store->samples()) {
      const double rss_mb = static_cast<double>(row.rss_bytes) / (1 << 20);
      s.mean_rss_mb += rss_mb;
      s.max_rss_mb = std::max(s.max_rss_mb, rss_mb);
      s.mean_cpu += row.cpu_util;
      s.mean_blocked += row.blocked_ults;
      s.max_blocked = std::max<double>(s.max_blocked, row.blocked_ults);
      s.max_cq_size = std::max<double>(s.max_cq_size,
                                       row.completion_queue_size);
    }
    if (s.samples > 0) {
      s.mean_rss_mb /= static_cast<double>(s.samples);
      s.mean_cpu /= static_cast<double>(s.samples);
      s.mean_blocked /= static_cast<double>(s.samples);
    }
    out.per_process.push_back(std::move(s));
  }
  return out;
}

std::string SysStatsSummary::format() const {
  std::string out =
      "=== SYMBIOSYS system statistics summary ===\n"
      "process                  samples  rss(MB) mean/max   cpu    blocked "
      "mean/max   cq max\n";
  char line[256];
  for (const auto& s : per_process) {
    std::snprintf(line, sizeof(line),
                  "%-24s %7zu  %7.1f/%-7.1f  %5.1f%%  %7.1f/%-7.0f  %6.0f\n",
                  s.process.c_str(), s.samples, s.mean_rss_mb, s.max_rss_mb,
                  100.0 * s.mean_cpu, s.mean_blocked, s.max_blocked,
                  s.max_cq_size);
    out += line;
  }
  return out;
}

}  // namespace sym::prof
