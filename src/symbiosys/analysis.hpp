// symbiosys/analysis.hpp
//
// Post-execution analysis: the C++ counterparts of the paper's analysis
// scripts (§V, §VI Table V):
//
//  * ProfileSummary  — ingests all per-process callpath profiles, performs
//    the global origin/target pairing, and ranks callpaths by cumulative
//    end-to-end request latency with per-step breakdowns (Fig. 6, 7, 9).
//  * TraceSummary    — stitches trace events from different processes into
//    per-request span trees, applying clock-skew correction anchored on the
//    propagated Lamport clocks (Fig. 5, 10, 12).
//  * SysStatsSummary — summarizes the periodic system-statistics samples.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "symbiosys/records.hpp"

namespace sym::prof {

/// Sorted key vector of an associative container. Consolidation paths keep
/// unordered maps for O(1) merging but must emit in an order that does not
/// depend on the hash layout (symlint rule D2, docs/STATIC_ANALYSIS.md) —
/// collect the keys with this helper and iterate those.
template <typename Map>
[[nodiscard]] std::vector<typename Map::key_type> sorted_keys(const Map& m) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  // symlint: allow(unordered-iter) reason=keys are sorted before any use
  for (const auto& kv : m) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  return keys;
}

// ---------------------------------------------------------------------------
// Profile summary
// ---------------------------------------------------------------------------

/// Aggregated view of one callpath across all entities.
struct CallpathBreakdown {
  Breadcrumb breadcrumb = 0;
  std::string name;             ///< "a => b => c"
  std::uint64_t call_count = 0; ///< origin-side invocation count
  double cumulative_ns = 0;     ///< summed origin execution time
  /// Per-interval sums across every recording entity.
  double interval_sum_ns[static_cast<int>(Interval::kCount)] = {};
  std::uint64_t interval_count[static_cast<int>(Interval::kCount)] = {};
  /// Per-entity call-count / latency distributions.
  std::vector<std::pair<std::uint32_t, double>> per_origin_ns;
  std::vector<std::pair<std::uint32_t, double>> per_target_ns;

  [[nodiscard]] double interval_ns(Interval iv) const noexcept {
    return interval_sum_ns[static_cast<int>(iv)];
  }
  /// Origin execution time not covered by any measured component — the
  /// paper's "unaccounted" portion (Fig. 11): network flight plus the
  /// t11->t12 wait in the OFI queue before progress notices the response.
  [[nodiscard]] double unaccounted_ns() const noexcept;
};

struct ProfileSummary {
  std::vector<CallpathBreakdown> callpaths;  ///< sorted by cumulative desc
  double total_ns = 0;

  /// Global analysis over all per-process profiles.
  static ProfileSummary build(const std::vector<const ProfileStore*>& stores);

  /// Find a callpath whose formatted name leaf matches `leaf_name`.
  [[nodiscard]] const CallpathBreakdown* find_by_leaf(
      const std::string& leaf_name) const;

  /// Fig. 6-style report of the top `top_n` dominant callpaths.
  [[nodiscard]] std::string format(std::size_t top_n = 5) const;
};

// ---------------------------------------------------------------------------
// Trace summary
// ---------------------------------------------------------------------------

/// One RPC call stitched from its four trace events, clock-corrected.
struct Span {
  std::uint64_t request_id = 0;
  Breadcrumb breadcrumb = 0;
  std::uint32_t base_order = 0;
  std::uint32_t origin_ep = 0;
  std::uint32_t target_ep = 0;
  // Corrected (reference-frame) timestamps; 0 when the event is missing.
  sim::TimeNs origin_start = 0;  ///< t1
  sim::TimeNs target_start = 0;  ///< t5
  sim::TimeNs target_end = 0;    ///< t8
  sim::TimeNs origin_end = 0;    ///< t14
  // Metrics sampled at target_start (Fig. 10 plots blocked ULTs) and at
  // origin_end (Fig. 12 plots num_ofi_events_read).
  std::uint32_t target_blocked_ults = 0;
  float origin_ofi_events_read = 0;
  /// Index of the enclosing parent span in RequestTrace::spans, -1 for a
  /// root span. Resolved once in TraceSummary::build so export paths never
  /// re-scan the span list per span.
  std::int32_t parent = -1;

  [[nodiscard]] sim::DurationNs duration() const noexcept {
    return origin_end > origin_start ? origin_end - origin_start : 0;
  }
};

struct RequestTrace {
  std::uint64_t request_id = 0;
  std::vector<Span> spans;  ///< ordered by origin_start
};

struct TraceSummary {
  std::vector<RequestTrace> requests;
  /// Estimated per-endpoint clock offsets (relative to the reference
  /// endpoint) recovered by the skew-correction pass.
  std::map<std::uint32_t, double> clock_offset_ns;
  /// request_id -> index into `requests`, built once so find() is O(1)
  /// instead of a linear scan per lookup.
  std::unordered_map<std::uint64_t, std::size_t> request_index;
  std::size_t total_events = 0;
  std::size_t total_spans = 0;

  static TraceSummary build(const std::vector<const TraceStore*>& stores);

  /// Text Gantt rendering of one request (Fig. 5 equivalent).
  [[nodiscard]] std::string format_request(const RequestTrace& rt) const;

  [[nodiscard]] const RequestTrace* find(std::uint64_t request_id) const;
};

// ---------------------------------------------------------------------------
// System-statistics summary
// ---------------------------------------------------------------------------

struct SysStatsProcessSummary {
  std::string process;
  std::size_t samples = 0;
  double mean_rss_mb = 0;
  double max_rss_mb = 0;
  double mean_cpu = 0;
  double max_blocked = 0;
  double mean_blocked = 0;
  double max_cq_size = 0;
};

struct SysStatsSummary {
  std::vector<SysStatsProcessSummary> per_process;

  static SysStatsSummary build(
      const std::vector<std::pair<std::string, const SysStatStore*>>& stores);

  [[nodiscard]] std::string format() const;
};

}  // namespace sym::prof
