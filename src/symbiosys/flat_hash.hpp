// symbiosys/flat_hash.hpp
//
// Open-addressing hash map used on the measurement hot path. The paper's
// overhead argument (§VI-B) only holds if recording a profile interval is
// near-free, so ProfileStore cannot afford std::unordered_map's
// node-per-entry allocation and pointer-chasing probe. Keys, values and the
// occupancy bytes live in three separate arrays: probing touches only the
// dense key array (a few cache lines for a profile-sized table), the large
// value payload is loaded exactly once on a hit, and the table allocates
// nothing after it reaches steady state. Linear probing over a power-of-two
// capacity keeps iteration deterministic for a given insertion sequence,
// which keeps experiment output reproducible.
//
// The interface is the small subset the measurement path needs: lookup-or-
// insert, iteration and clear. Erase is deliberately unsupported — profile
// entries are only ever accumulated, so the table needs no tombstones.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace sym::prof {

template <typename Key, typename Value, typename Hash>
class FlatHashMap {
 public:
  /// What dereferencing an iterator yields: a pair-shaped view into the
  /// split key/value arrays (structured bindings work as with std::pair).
  struct Ref {
    const Key& first;
    const Value& second;
  };

  FlatHashMap() = default;

  /// Find the entry for `key`, default-constructing it on first use.
  /// References returned by previous calls are invalidated when the table
  /// grows.
  Value& find_or_insert(const Key& key) {
    if (keys_.empty()) rehash(kMinCapacity);
    std::size_t i = probe_start(key);
    while (true) {
      if (!used_[i]) {
        if (size_ + 1 > (capacity() * 3) / 4) {  // max load factor 0.75
          rehash(capacity() * 2);
          i = probe_start(key);
          continue;
        }
        used_[i] = 1;
        ++size_;
        keys_[i] = key;
        return values_[i];
      }
      if (keys_[i] == key) return values_[i];
      i = (i + 1) & mask_;
    }
  }

  /// Lookup without insertion; nullptr when absent.
  [[nodiscard]] const Value* find(const Key& key) const noexcept {
    if (keys_.empty()) return nullptr;
    std::size_t i = probe_start(key);
    while (used_[i]) {
      if (keys_[i] == key) return &values_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return keys_.size(); }

  /// Bumped on every rehash; lets callers detect slot invalidation.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

  void clear() {
    keys_.clear();
    values_.clear();
    used_.clear();
    size_ = 0;
    mask_ = 0;
    ++generation_;
  }

  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while ((cap * 3) / 4 < n) cap *= 2;
    if (cap > capacity()) rehash(cap);
  }

  /// Forward iteration over occupied slots, in slot order (deterministic
  /// for a given insertion sequence).
  class const_iterator {
   public:
    const_iterator(const FlatHashMap* map, std::size_t i)
        : map_(map), i_(i) {
      skip_free();
    }
    Ref operator*() const { return {map_->keys_[i_], map_->values_[i_]}; }
    struct ArrowProxy {
      Ref ref;
      const Ref* operator->() const { return &ref; }
    };
    ArrowProxy operator->() const { return {**this}; }
    const_iterator& operator++() {
      ++i_;
      skip_free();
      return *this;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    void skip_free() {
      while (i_ < map_->capacity() && !map_->used_[i_]) ++i_;
    }
    const FlatHashMap* map_;
    std::size_t i_;
  };

  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, capacity()}; }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  [[nodiscard]] std::size_t probe_start(const Key& key) const noexcept {
    return static_cast<std::size_t>(Hash{}(key)) & mask_;
  }

  void rehash(std::size_t new_cap) {
    assert((new_cap & (new_cap - 1)) == 0 && "capacity must be a power of 2");
    std::vector<Key> old_keys = std::move(keys_);
    std::vector<Value> old_values = std::move(values_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    keys_.assign(new_cap, Key{});
    values_.assign(new_cap, Value{});
    used_.assign(new_cap, 0);
    mask_ = new_cap - 1;
    ++generation_;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (!old_used[i]) continue;
      std::size_t j = probe_start(old_keys[i]);
      while (used_[j]) j = (j + 1) & mask_;
      used_[j] = 1;
      keys_[j] = old_keys[i];
      values_[j] = std::move(old_values[i]);
    }
  }

  std::vector<Key> keys_;
  std::vector<Value> values_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace sym::prof
