// symbiosys/export.hpp
//
// File export/import of measurement data. Each simulated process dumps its
// profile / trace / system-statistics stores as CSV, and the analysis
// "scripts" (analysis.hpp) re-ingest them — mirroring the paper's
// consolidate-then-postprocess workflow and enabling the Table V analysis
// timing study against on-disk data.
#pragma once

#include <iosfwd>
#include <string>

#include "symbiosys/records.hpp"

namespace sym::prof {

void write_profile_csv(std::ostream& os, const ProfileStore& store);
[[nodiscard]] ProfileStore read_profile_csv(std::istream& is);

void write_trace_csv(std::ostream& os, const TraceStore& store);
[[nodiscard]] TraceStore read_trace_csv(std::istream& is);

void write_sysstats_csv(std::ostream& os, const SysStatStore& store);
[[nodiscard]] SysStatStore read_sysstats_csv(std::istream& is);

/// Path-based conveniences (throw std::runtime_error on I/O failure).
void write_profile_csv_file(const std::string& path, const ProfileStore&);
[[nodiscard]] ProfileStore read_profile_csv_file(const std::string& path);
void write_trace_csv_file(const std::string& path, const TraceStore&);
[[nodiscard]] TraceStore read_trace_csv_file(const std::string& path);
void write_sysstats_csv_file(const std::string& path, const SysStatStore&);
[[nodiscard]] SysStatStore read_sysstats_csv_file(const std::string& path);

/// Dump the global name registry (hash16,name) so analysis run in another
/// process could resolve breadcrumbs.
void write_names_csv(std::ostream& os);

}  // namespace sym::prof
