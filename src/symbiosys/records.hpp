// symbiosys/records.hpp
//
// Measurement records: callpath profiles (per-interval statistics keyed by
// breadcrumb + origin/target entity) and distributed trace events. These are
// the in-memory equivalents of the per-process profile/trace files that the
// paper's analysis scripts ingest.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "simkit/time.hpp"
#include "symbiosys/breadcrumb.hpp"
#include "symbiosys/chunked_buffer.hpp"
#include "symbiosys/flat_hash.hpp"

namespace sym::prof {

/// Instrumentation levels, matching the overhead-study stages (§VI-B):
///  kOff    — Baseline: instrumentation and measurement disabled.
///  kStage1 — metadata (breadcrumb / trace id) propagation only.
///  kStage2 — callpath profiling, tracing and system-statistic sampling,
///            but no Mercury PVAR collection.
///  kFull   — everything, PVARs integrated on the fly.
enum class Level : std::uint8_t { kOff, kStage1, kStage2, kFull };

[[nodiscard]] const char* to_string(Level l) noexcept;

/// Which end of the RPC recorded a measurement.
enum class Side : std::uint8_t { kOrigin, kTarget };

/// The intervals of the RPC execution model (paper Table III), plus the
/// origin-side response deserialization for completeness.
enum class Interval : std::uint8_t {
  kOriginExec,      ///< t1  -> t14  (ULT-local key)
  kInputSer,        ///< t2  -> t3   (Mercury PVAR)
  kInternalRdma,    ///< t3  -> t4   (Mercury PVAR)
  kHandlerWait,     ///< t4  -> t5   (ULT-local key: "target ULT handler time")
  kInputDeser,      ///< t6  -> t7   (Mercury PVAR)
  kTargetExec,      ///< t5  -> t8   (ULT-local key, exclusive)
  kOutputSer,       ///< t9  -> t10  (Mercury PVAR)
  kTargetCallback,  ///< t8  -> t13  (ULT-local key)
  kOriginCallback,  ///< t12 -> t14  (Mercury PVAR)
  kOutputDeser,     ///< origin-side response deserialization
  kCount,
};

[[nodiscard]] const char* to_string(Interval iv) noexcept;

/// Count / sum / min / max accumulator (nanosecond values).
struct IntervalStats {
  std::uint64_t count = 0;
  double sum_ns = 0;
  double min_ns = 0;
  double max_ns = 0;

  void add(double ns) noexcept {
    if (count == 0 || ns < min_ns) min_ns = ns;
    if (count == 0 || ns > max_ns) max_ns = ns;
    ++count;
    sum_ns += ns;
  }
  [[nodiscard]] double mean_ns() const noexcept {
    return count == 0 ? 0.0 : sum_ns / static_cast<double>(count);
  }
  void merge(const IntervalStats& o) noexcept {
    if (o.count == 0) return;
    if (count == 0 || o.min_ns < min_ns) min_ns = o.min_ns;
    if (count == 0 || o.max_ns > max_ns) max_ns = o.max_ns;
    count += o.count;
    sum_ns += o.sum_ns;
  }
};

/// Identifies one (callpath, side, self entity, peer entity) combination.
struct CallpathKey {
  Breadcrumb breadcrumb = 0;
  Side side = Side::kOrigin;
  std::uint32_t self_ep = 0;  ///< endpoint address of the recording entity
  std::uint32_t peer_ep = 0;  ///< endpoint address of the other end

  bool operator==(const CallpathKey&) const = default;
};

struct CallpathKeyHash {
  std::size_t operator()(const CallpathKey& k) const noexcept {
    // Each field is spread with its own odd multiplier before combining, so
    // no two fields can cancel in a shared bit range (the old scheme packed
    // `side` and shifted endpoint ids into overlapping low bits, which
    // degraded badly under power-of-two masking). One xor-shift-multiply
    // round avalanches the combined word so the low bits the table masks on
    // depend on every field; this runs on the record miss path, so it stays
    // at five multiplies total.
    std::uint64_t h = k.breadcrumb * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<std::uint64_t>(k.self_ep) * 0xC2B2AE3D27D4EB4FULL;
    h ^= static_cast<std::uint64_t>(k.peer_ep) * 0x165667B19E3779F9ULL;
    h ^= static_cast<std::uint64_t>(k.side) * 0x27D4EB2F165667C5ULL;
    h ^= h >> 32;
    h *= 0xD6E8FEB86659FD93ULL;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

/// One (interval, duration) measurement, for batched recording.
struct IntervalSample {
  Interval iv;
  double ns;
};

/// Per-callpath, per-interval statistics for one entity pair.
struct CallpathStats {
  IntervalStats intervals[static_cast<int>(Interval::kCount)];

  IntervalStats& at(Interval iv) noexcept {
    return intervals[static_cast<int>(iv)];
  }
  [[nodiscard]] const IntervalStats& at(Interval iv) const noexcept {
    return intervals[static_cast<int>(iv)];
  }
};

/// The per-process callpath profile (one per margolite instance).
///
/// The store sits on the measurement hot path — every instrumented RPC
/// records 1-6 intervals — so it is built on the open-addressing
/// FlatHashMap plus a small direct-mapped memo of recently touched
/// callpaths. A handler records up to five intervals back to back on one
/// key, clients replay the same RPC in tight loops, and a provider's
/// execution stream interleaves a handful of client callpaths — all
/// regimes the memo captures, so the common case is a cheap slot index, a
/// key compare, and an IntervalStats::add with no probe at all.
class ProfileStore {
 public:
  using Map = FlatHashMap<CallpathKey, CallpathStats, CallpathKeyHash>;

  void record(const CallpathKey& key, Interval iv, double ns) {
    stats_for(key).at(iv).add(ns);
  }

  /// Record several intervals for one key with a single lookup. This is the
  /// shape of the instrumentation hot path — a completion callback records
  /// up to five intervals back to back on one callpath — and the unrolled
  /// adds cost roughly one memo-checked record() for the whole batch.
  template <typename... Samples>
  void record_batch(const CallpathKey& key, Samples... samples) {
    CallpathStats& s = stats_for(key);
    (s.at(samples.iv).add(samples.ns), ...);
  }

  /// Merge pre-aggregated statistics (used by the CSV importer and by
  /// cross-process consolidation).
  void merge_entry(const CallpathKey& key, Interval iv,
                   const IntervalStats& stats) {
    stats_for(key).at(iv).merge(stats);
  }

  /// Merge every entry of `other` into this store (shard consolidation).
  void merge_store(const ProfileStore& other) {
    for (const auto& [key, stats] : other.entries()) {
      CallpathStats& dst = stats_for(key);
      for (int i = 0; i < static_cast<int>(Interval::kCount); ++i) {
        dst.intervals[i].merge(stats.intervals[i]);
      }
    }
  }

  [[nodiscard]] const Map& entries() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  void clear() {
    data_.clear();
    for (auto& p : memo_vals_) p = nullptr;
  }

 private:
  /// Direct-mapped memo capacity. 32 slots cover a provider ES serving a
  /// few dozen interleaved client callpaths; a larger working set degrades
  /// gracefully to the probe path (the memo is a cache, never authoritative).
  static constexpr std::size_t kMemoBits = 5;
  static constexpr std::size_t kMemoSlots = std::size_t{1} << kMemoBits;

  static std::size_t memo_slot(const CallpathKey& key) noexcept {
    // One multiply over the xor-folded key; top bits index the memo.
    const std::uint64_t w =
        key.breadcrumb ^ (static_cast<std::uint64_t>(key.self_ep) << 32) ^
        key.peer_ep ^ (static_cast<std::uint64_t>(key.side) << 16);
    return static_cast<std::size_t>((w * 0x9E3779B97F4A7C15ULL) >>
                                    (64 - kMemoBits));
  }

  CallpathStats& stats_for(const CallpathKey& key) {
    // Hit path: slot index, null check, key compare — no probe, no full
    // hash. The miss path lives out of line (records.cpp) so this stays
    // small enough to inline into every record()/record_batch() call site.
    const std::size_t i = memo_slot(key);
    if (memo_vals_[i] != nullptr && memo_keys_[i] == key) {
      return *memo_vals_[i];
    }
    return stats_for_slow(key, i);
  }

  /// Probe/insert plus memo re-publication. Memo entries can dangle only
  /// across a rehash, and a rehash can only happen inside the
  /// find_or_insert here, which flushes the whole memo (generation test)
  /// before re-publishing the slot it returned. clear() nulls every slot.
  CallpathStats& stats_for_slow(const CallpathKey& key, std::size_t slot);

  Map data_;
  CallpathKey memo_keys_[kMemoSlots]{};
  CallpathStats* memo_vals_[kMemoSlots]{};
  std::uint64_t memo_generation_ = 0;
};

/// Per-execution-stream sharding of the callpath profile. Handler ULTs on
/// different ESs record into disjoint shards (no shared cache line, no
/// contention in a real multi-threaded deployment); consolidate_into()
/// merges shards in rank order into a plain ProfileStore for analysis and
/// export. Shard references stay stable while the set grows.
class ShardedProfileStore {
 public:
  /// The shard for execution-stream `rank`, created on first use.
  [[nodiscard]] ProfileStore& shard(std::size_t rank) {
    while (rank >= shards_.size()) {
      shards_.push_back(std::make_unique<ProfileStore>());
    }
    return *shards_[rank];
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// True when no shard holds any entry (cheap consolidation skip).
  [[nodiscard]] bool all_empty() const noexcept {
    for (const auto& s : shards_) {
      if (!s->empty()) return false;
    }
    return true;
  }

  /// Merge every shard into `target` (rank order, deterministic) and clear
  /// the shards, so repeated consolidation never double-counts.
  void consolidate_into(ProfileStore& target) {
    for (auto& s : shards_) {
      target.merge_store(*s);
      s->clear();
    }
  }

  void clear() {
    for (auto& s : shards_) s->clear();
  }

 private:
  std::vector<std::unique_ptr<ProfileStore>> shards_;
};

/// Trace event kinds: t1/t14 on the origin, t5/t8 on the target (§IV-A2).
enum class TraceEventKind : std::uint8_t {
  kOriginStart,  ///< t1
  kOriginEnd,    ///< t14
  kTargetStart,  ///< t5
  kTargetEnd,    ///< t8
};

[[nodiscard]] const char* to_string(TraceEventKind k) noexcept;

/// One trace record. Every event carries the request metadata plus sampled
/// performance data from the RPC library (PVARs), the tasking layer
/// (blocked/runnable ULTs), and the OS (memory, CPU).
struct TraceEvent {
  std::uint64_t request_id = 0;
  std::uint32_t order = 0;
  TraceEventKind kind{};
  Breadcrumb breadcrumb = 0;
  std::uint32_t self_ep = 0;
  std::uint32_t peer_ep = 0;
  sim::TimeNs local_ts = 0;  ///< node-local wall clock (skewed!)
  std::uint64_t lamport = 0;

  // Sampled metrics (Stage 2).
  std::uint32_t blocked_ults = 0;
  std::uint32_t runnable_ults = 0;
  std::uint64_t rss_bytes = 0;
  float cpu_util = 0;

  // Sampled PVARs (Full only).
  float completion_queue_size = 0;
  float num_ofi_events_read = 0;
  float num_posted_handles = 0;
};

/// Synthesize the four trace events of a self-contained **action span** —
/// the record of one adaptation action taken by the in-stack controller
/// (margolite's PolicyEngine). The span's origin and target are the acting
/// process itself; it stitches through TraceSummary, renders in
/// format_request, and exports to Zipkin exactly like an RPC span, so
/// adaptation is observable in the same traces it reacts to. The action
/// name must be registered with NameRegistry (breadcrumb = hash16(name)).
///
/// `start_ts`/`end_ts` are node-local timestamps of detection and
/// application; `lamport_base` numbers the four events `+1..+4`.
[[nodiscard]] std::array<TraceEvent, 4> make_action_span(
    std::uint64_t request_id, Breadcrumb breadcrumb, std::uint32_t self_ep,
    sim::TimeNs start_ts, sim::TimeNs end_ts, std::uint64_t lamport_base);

/// The per-process trace buffer: a chunked arena, so appending an event in
/// the middle of a measured workload never triggers a full-buffer
/// reallocation spike. set_ring_chunks() bounds memory for always-on runs
/// (flight-recorder mode: oldest events are dropped, dropped() counts them).
class TraceStore {
 public:
  using Buffer = ChunkedBuffer<TraceEvent, 1024>;

  void append(const TraceEvent& ev) { events_.push_back(ev); }
  [[nodiscard]] const Buffer& events() const noexcept { return events_; }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return events_.dropped();
  }
  /// Bound the buffer to `max_chunks` chunks of 1024 events (0 = unbounded).
  void set_ring_chunks(std::size_t max_chunks) noexcept {
    events_.set_ring_chunks(max_chunks);
  }
  void clear() { events_.clear(); }

 private:
  Buffer events_;
};

/// Periodic system-statistics sample (one row per sampling tick): OS-level
/// and tasking-level gauges decoupled from any particular request.
struct SysStat {
  sim::TimeNs local_ts = 0;
  std::uint64_t rss_bytes = 0;
  float cpu_util = 0;
  std::uint32_t blocked_ults = 0;
  std::uint32_t runnable_ults = 0;
  float completion_queue_size = 0;
  float num_posted_handles = 0;
};

/// Per-process system-statistics buffer, filled by margolite's sampler ULT.
/// Chunked like TraceStore: the sampler appends one row per tick forever,
/// so the buffer must neither reallocate nor grow unbounded in ring mode.
class SysStatStore {
 public:
  using Buffer = ChunkedBuffer<SysStat, 512>;

  void append(const SysStat& s) { samples_.push_back(s); }
  [[nodiscard]] const Buffer& samples() const noexcept { return samples_; }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return samples_.dropped();
  }
  /// Bound the buffer to `max_chunks` chunks of 512 samples (0 = unbounded).
  void set_ring_chunks(std::size_t max_chunks) noexcept {
    samples_.set_ring_chunks(max_chunks);
  }
  void clear() { samples_.clear(); }

 private:
  Buffer samples_;
};

}  // namespace sym::prof
