// symbiosys/records.hpp
//
// Measurement records: callpath profiles (per-interval statistics keyed by
// breadcrumb + origin/target entity) and distributed trace events. These are
// the in-memory equivalents of the per-process profile/trace files that the
// paper's analysis scripts ingest.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "simkit/time.hpp"
#include "symbiosys/breadcrumb.hpp"

namespace sym::prof {

/// Instrumentation levels, matching the overhead-study stages (§VI-B):
///  kOff    — Baseline: instrumentation and measurement disabled.
///  kStage1 — metadata (breadcrumb / trace id) propagation only.
///  kStage2 — callpath profiling, tracing and system-statistic sampling,
///            but no Mercury PVAR collection.
///  kFull   — everything, PVARs integrated on the fly.
enum class Level : std::uint8_t { kOff, kStage1, kStage2, kFull };

[[nodiscard]] const char* to_string(Level l) noexcept;

/// Which end of the RPC recorded a measurement.
enum class Side : std::uint8_t { kOrigin, kTarget };

/// The intervals of the RPC execution model (paper Table III), plus the
/// origin-side response deserialization for completeness.
enum class Interval : std::uint8_t {
  kOriginExec,      ///< t1  -> t14  (ULT-local key)
  kInputSer,        ///< t2  -> t3   (Mercury PVAR)
  kInternalRdma,    ///< t3  -> t4   (Mercury PVAR)
  kHandlerWait,     ///< t4  -> t5   (ULT-local key: "target ULT handler time")
  kInputDeser,      ///< t6  -> t7   (Mercury PVAR)
  kTargetExec,      ///< t5  -> t8   (ULT-local key, exclusive)
  kOutputSer,       ///< t9  -> t10  (Mercury PVAR)
  kTargetCallback,  ///< t8  -> t13  (ULT-local key)
  kOriginCallback,  ///< t12 -> t14  (Mercury PVAR)
  kOutputDeser,     ///< origin-side response deserialization
  kCount,
};

[[nodiscard]] const char* to_string(Interval iv) noexcept;

/// Count / sum / min / max accumulator (nanosecond values).
struct IntervalStats {
  std::uint64_t count = 0;
  double sum_ns = 0;
  double min_ns = 0;
  double max_ns = 0;

  void add(double ns) noexcept {
    if (count == 0 || ns < min_ns) min_ns = ns;
    if (count == 0 || ns > max_ns) max_ns = ns;
    ++count;
    sum_ns += ns;
  }
  [[nodiscard]] double mean_ns() const noexcept {
    return count == 0 ? 0.0 : sum_ns / static_cast<double>(count);
  }
  void merge(const IntervalStats& o) noexcept {
    if (o.count == 0) return;
    if (count == 0 || o.min_ns < min_ns) min_ns = o.min_ns;
    if (count == 0 || o.max_ns > max_ns) max_ns = o.max_ns;
    count += o.count;
    sum_ns += o.sum_ns;
  }
};

/// Identifies one (callpath, side, self entity, peer entity) combination.
struct CallpathKey {
  Breadcrumb breadcrumb = 0;
  Side side = Side::kOrigin;
  std::uint32_t self_ep = 0;  ///< endpoint address of the recording entity
  std::uint32_t peer_ep = 0;  ///< endpoint address of the other end

  bool operator==(const CallpathKey&) const = default;
};

struct CallpathKeyHash {
  std::size_t operator()(const CallpathKey& k) const noexcept {
    std::uint64_t h = k.breadcrumb * 0x9E3779B97F4A7C15ULL;
    h ^= (static_cast<std::uint64_t>(k.self_ep) << 33) ^
         (static_cast<std::uint64_t>(k.peer_ep) << 1) ^
         static_cast<std::uint64_t>(k.side);
    h *= 0xBF58476D1CE4E5B9ULL;
    return static_cast<std::size_t>(h ^ (h >> 29));
  }
};

/// Per-callpath, per-interval statistics for one entity pair.
struct CallpathStats {
  IntervalStats intervals[static_cast<int>(Interval::kCount)];

  IntervalStats& at(Interval iv) noexcept {
    return intervals[static_cast<int>(iv)];
  }
  [[nodiscard]] const IntervalStats& at(Interval iv) const noexcept {
    return intervals[static_cast<int>(iv)];
  }
};

/// The per-process callpath profile (one per margolite instance).
class ProfileStore {
 public:
  void record(const CallpathKey& key, Interval iv, double ns) {
    data_[key].at(iv).add(ns);
  }

  /// Merge pre-aggregated statistics (used by the CSV importer and by
  /// cross-process consolidation).
  void merge_entry(const CallpathKey& key, Interval iv,
                   const IntervalStats& stats) {
    data_[key].at(iv).merge(stats);
  }

  [[nodiscard]] const std::unordered_map<CallpathKey, CallpathStats,
                                         CallpathKeyHash>&
  entries() const noexcept {
    return data_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  void clear() { data_.clear(); }

 private:
  std::unordered_map<CallpathKey, CallpathStats, CallpathKeyHash> data_;
};

/// Trace event kinds: t1/t14 on the origin, t5/t8 on the target (§IV-A2).
enum class TraceEventKind : std::uint8_t {
  kOriginStart,  ///< t1
  kOriginEnd,    ///< t14
  kTargetStart,  ///< t5
  kTargetEnd,    ///< t8
};

[[nodiscard]] const char* to_string(TraceEventKind k) noexcept;

/// One trace record. Every event carries the request metadata plus sampled
/// performance data from the RPC library (PVARs), the tasking layer
/// (blocked/runnable ULTs), and the OS (memory, CPU).
struct TraceEvent {
  std::uint64_t request_id = 0;
  std::uint32_t order = 0;
  TraceEventKind kind{};
  Breadcrumb breadcrumb = 0;
  std::uint32_t self_ep = 0;
  std::uint32_t peer_ep = 0;
  sim::TimeNs local_ts = 0;  ///< node-local wall clock (skewed!)
  std::uint64_t lamport = 0;

  // Sampled metrics (Stage 2).
  std::uint32_t blocked_ults = 0;
  std::uint32_t runnable_ults = 0;
  std::uint64_t rss_bytes = 0;
  float cpu_util = 0;

  // Sampled PVARs (Full only).
  float completion_queue_size = 0;
  float num_ofi_events_read = 0;
  float num_posted_handles = 0;
};

/// Synthesize the four trace events of a self-contained **action span** —
/// the record of one adaptation action taken by the in-stack controller
/// (margolite's PolicyEngine). The span's origin and target are the acting
/// process itself; it stitches through TraceSummary, renders in
/// format_request, and exports to Zipkin exactly like an RPC span, so
/// adaptation is observable in the same traces it reacts to. The action
/// name must be registered with NameRegistry (breadcrumb = hash16(name)).
///
/// `start_ts`/`end_ts` are node-local timestamps of detection and
/// application; `lamport_base` numbers the four events `+1..+4`.
[[nodiscard]] std::array<TraceEvent, 4> make_action_span(
    std::uint64_t request_id, Breadcrumb breadcrumb, std::uint32_t self_ep,
    sim::TimeNs start_ts, sim::TimeNs end_ts, std::uint64_t lamport_base);

/// The per-process trace buffer.
class TraceStore {
 public:
  void append(const TraceEvent& ev) { events_.push_back(ev); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Periodic system-statistics sample (one row per sampling tick): OS-level
/// and tasking-level gauges decoupled from any particular request.
struct SysStat {
  sim::TimeNs local_ts = 0;
  std::uint64_t rss_bytes = 0;
  float cpu_util = 0;
  std::uint32_t blocked_ults = 0;
  std::uint32_t runnable_ults = 0;
  float completion_queue_size = 0;
  float num_posted_handles = 0;
};

/// Per-process system-statistics buffer, filled by margolite's sampler ULT.
class SysStatStore {
 public:
  void append(const SysStat& s) { samples_.push_back(s); }
  [[nodiscard]] const std::vector<SysStat>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  void clear() { samples_.clear(); }

 private:
  std::vector<SysStat> samples_;
};

}  // namespace sym::prof
