#include "symbiosys/insight.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

namespace sym::prof {

// ---------------------------------------------------------------------------
// Critical path
// ---------------------------------------------------------------------------

namespace {

/// Children of `parent` within the same request: spans one level deeper
/// whose ancestry prefix equals the parent's breadcrumb and whose interval
/// falls inside the parent's.
std::vector<const Span*> children_of(const RequestTrace& rt,
                                     const Span& parent) {
  std::vector<const Span*> out;
  for (const auto& sp : rt.spans) {
    if (&sp == &parent) continue;
    if ((sp.breadcrumb >> 16) != parent.breadcrumb) continue;
    if (sp.origin_start < parent.origin_start) continue;
    if (parent.origin_end != 0 && sp.origin_end > parent.origin_end) continue;
    out.push_back(&sp);
  }
  return out;
}

}  // namespace

CriticalPath critical_path(const RequestTrace& rt) {
  CriticalPath cp;
  cp.request_id = rt.request_id;
  if (rt.spans.empty()) return cp;

  // Root: the earliest-starting span with the shallowest breadcrumb.
  const Span* root = &rt.spans.front();
  for (const auto& sp : rt.spans) {
    if (depth(sp.breadcrumb) < depth(root->breadcrumb) ||
        (depth(sp.breadcrumb) == depth(root->breadcrumb) &&
         sp.origin_start < root->origin_start)) {
      root = &sp;
    }
  }
  cp.total_ns = root->duration();

  // Walk down: at each level pick the child that ends last (it gates the
  // parent's completion), attributing the rest of the parent's time to the
  // parent itself.
  const Span* cur = root;
  while (cur != nullptr) {
    const auto kids = children_of(rt, *cur);
    const Span* gating = nullptr;
    sim::DurationNs covered = 0;
    for (const Span* k : kids) {
      covered += k->duration();
      if (gating == nullptr || k->origin_end > gating->origin_end) {
        gating = k;
      }
    }
    CriticalPathStep step;
    step.breadcrumb = cur->breadcrumb;
    step.start = cur->origin_start;
    step.end = cur->origin_end;
    const auto dur = cur->duration();
    step.self_ns = covered < dur ? dur - covered : 0;
    cp.steps.push_back(step);
    cur = gating;
  }
  return cp;
}

const CriticalPathStep* CriticalPath::dominant() const {
  const CriticalPathStep* best = nullptr;
  for (const auto& step : steps) {
    if (best == nullptr || step.self_ns > best->self_ns) best = &step;
  }
  return best;
}

std::string CriticalPath::format() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "critical path of request %llx (%.2f us total):\n",
                static_cast<unsigned long long>(request_id),
                static_cast<double>(total_ns) / 1e3);
  out += line;
  const auto& reg = NameRegistry::global();
  for (const auto& step : steps) {
    std::snprintf(line, sizeof(line), "  %-50s self %10.2f us\n",
                  reg.format(step.breadcrumb).c_str(),
                  static_cast<double>(step.self_ns) / 1e3);
    out += line;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Empirical anomalies
// ---------------------------------------------------------------------------

namespace {

double median_of(std::vector<double>& values) {
  if (values.empty()) return 0;
  const auto mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<long>(mid),
                   values.end());
  double m = values[mid];
  if (values.size() % 2 == 0) {
    const auto lower =
        *std::max_element(values.begin(), values.begin() + static_cast<long>(mid));
    m = (m + lower) / 2.0;
  }
  return m;
}

}  // namespace

AnomalyReport detect_anomalies(const TraceSummary& summary, double threshold,
                               std::size_t min_samples) {
  AnomalyReport report;

  // Collect durations per callpath.
  std::unordered_map<Breadcrumb, std::vector<std::pair<std::uint64_t, double>>>
      per_path;
  for (const auto& rt : summary.requests) {
    for (const auto& sp : rt.spans) {
      per_path[sp.breadcrumb].emplace_back(
          rt.request_id, static_cast<double>(sp.duration()));
    }
  }

  // Walk callpaths in sorted-breadcrumb order: per_callpath rows and equal-
  // deviation anomalies must not inherit the hash layout of `per_path`.
  for (const Breadcrumb bc : sorted_keys(per_path)) {
    auto& samples = per_path[bc];
    if (samples.size() < min_samples) continue;
    std::vector<double> durations;
    durations.reserve(samples.size());
    for (const auto& [rid, d] : samples) durations.push_back(d);
    const double med = median_of(durations);
    std::vector<double> devs;
    devs.reserve(durations.size());
    for (const double d : durations) devs.push_back(std::abs(d - med));
    double mad = median_of(devs);
    // Degenerate distributions (near-constant latency): fall back to a
    // small fraction of the median so division stays meaningful.
    if (mad < med * 0.01) mad = med * 0.01 + 1.0;

    CallpathLatencyStats stats;
    stats.breadcrumb = bc;
    stats.samples = samples.size();
    stats.median_ns = med;
    stats.mad_ns = mad;
    stats.max_ns = *std::max_element(durations.begin(), durations.end());
    report.per_callpath.push_back(stats);

    for (const auto& [rid, d] : samples) {
      const double deviation = std::abs(d - med) / mad;
      if (deviation > threshold) {
        report.anomalies.push_back(SpanAnomaly{
            rid, bc, static_cast<sim::DurationNs>(d), deviation});
      }
    }
  }
  std::sort(report.anomalies.begin(), report.anomalies.end(),
            [](const SpanAnomaly& a, const SpanAnomaly& b) {
              return a.deviation > b.deviation;
            });
  std::sort(report.per_callpath.begin(), report.per_callpath.end(),
            [](const CallpathLatencyStats& a, const CallpathLatencyStats& b) {
              return a.breadcrumb < b.breadcrumb;
            });
  return report;
}

std::string AnomalyReport::format(std::size_t top_n) const {
  std::string out = "=== SYMBIOSYS anomaly report ===\n";
  char line[256];
  const auto& reg = NameRegistry::global();
  for (const auto& s : per_callpath) {
    std::snprintf(line, sizeof(line),
                  "%-50s n=%6zu median %10.2f us  mad %8.2f us  max %10.2f "
                  "us\n",
                  reg.format(s.breadcrumb).c_str(), s.samples,
                  s.median_ns / 1e3, s.mad_ns / 1e3, s.max_ns / 1e3);
    out += line;
  }
  std::snprintf(line, sizeof(line), "anomalous spans: %zu\n",
                anomalies.size());
  out += line;
  for (std::size_t i = 0; i < std::min(top_n, anomalies.size()); ++i) {
    const auto& a = anomalies[i];
    std::snprintf(line, sizeof(line),
                  "  request %llx %-40s %10.2f us (%.1f MADs)\n",
                  static_cast<unsigned long long>(a.request_id),
                  reg.format(a.breadcrumb).c_str(),
                  static_cast<double>(a.duration_ns) / 1e3, a.deviation);
    out += line;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Structural anomalies
// ---------------------------------------------------------------------------

StructuralDiff structural_diff(const TraceSummary& summary,
                               std::uint16_t root_leaf) {
  StructuralDiff diff;
  std::map<std::vector<std::pair<Breadcrumb, std::uint32_t>>,
           std::vector<std::uint64_t>>
      groups;
  for (const auto& rt : summary.requests) {
    if (rt.spans.empty()) continue;
    if (root_leaf != 0) {
      const auto& root = rt.spans.front();
      if (depth(root.breadcrumb) != 1 ||
          leaf_of(root.breadcrumb) != root_leaf) {
        continue;
      }
    }
    std::map<Breadcrumb, std::uint32_t> counts;
    for (const auto& sp : rt.spans) ++counts[sp.breadcrumb];
    std::vector<std::pair<Breadcrumb, std::uint32_t>> sig(counts.begin(),
                                                          counts.end());
    groups[std::move(sig)].push_back(rt.request_id);
  }
  for (auto& [sig, rids] : groups) {
    StructureGroup g;
    g.signature = sig;
    g.request_ids = std::move(rids);
    diff.groups.push_back(std::move(g));
  }
  std::sort(diff.groups.begin(), diff.groups.end(),
            [](const StructureGroup& a, const StructureGroup& b) {
              return a.size() > b.size();
            });
  return diff;
}

std::vector<std::uint64_t> StructuralDiff::minority_requests() const {
  std::vector<std::uint64_t> out;
  for (std::size_t i = 1; i < groups.size(); ++i) {
    out.insert(out.end(), groups[i].request_ids.begin(),
               groups[i].request_ids.end());
  }
  return out;
}

std::string StructuralDiff::format() const {
  std::string out = "=== SYMBIOSYS structural diff ===\n";
  char line[256];
  const auto& reg = NameRegistry::global();
  for (std::size_t i = 0; i < groups.size(); ++i) {
    std::snprintf(line, sizeof(line), "group %zu: %zu requests, %zu distinct "
                  "callpaths%s\n",
                  i, groups[i].size(), groups[i].signature.size(),
                  i == 0 ? " (majority)" : "");
    out += line;
    for (const auto& [bc, count] : groups[i].signature) {
      std::snprintf(line, sizeof(line), "    %ux %s\n", count,
                    reg.format(bc).c_str());
      out += line;
    }
  }
  return out;
}

}  // namespace sym::prof
