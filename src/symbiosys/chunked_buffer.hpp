// symbiosys/chunked_buffer.hpp
//
// Chunked arena buffer for append-heavy measurement streams (trace events,
// system-statistic samples). A growing std::vector periodically copies every
// element it holds — on a trace buffer with a million events that is a
// multi-hundred-megabyte reallocation spike right in the middle of the
// workload being measured. This buffer instead appends into fixed-size
// chunks: appends never move existing elements, iteration order is stable
// (oldest to newest), and memory grows one chunk at a time.
//
// Ring mode bounds memory for always-on deployments: when the configured
// chunk budget is reached, the oldest chunk is recycled to the tail and its
// elements are dropped (counted in dropped()). This is the flight-recorder
// discipline production tracing systems use so instrumentation can stay on
// indefinitely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace sym::prof {

template <typename T, std::size_t ChunkCap = 1024>
class ChunkedBuffer {
  static_assert(ChunkCap > 0);

 public:
  ChunkedBuffer() = default;

  void push_back(const T& v) { emplace_back() = v; }

  T& emplace_back() {
    if (chunks_.empty() || chunks_.back()->count == ChunkCap) grow();
    Chunk& c = *chunks_.back();
    ++total_appended_;
    return c.items[c.count++];
  }

  /// Elements currently held (appended minus dropped by ring eviction).
  [[nodiscard]] std::size_t size() const noexcept {
    return total_appended_ - dropped_;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Lifetime append count, including ring-evicted elements.
  [[nodiscard]] std::uint64_t total_appended() const noexcept {
    return total_appended_;
  }
  /// Elements evicted by ring mode so far.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunks_.size();
  }

  /// Bound the buffer to `max_chunks` chunks (ChunkCap elements each);
  /// 0 restores unbounded growth. Takes effect on the next append that
  /// would otherwise allocate a new chunk.
  void set_ring_chunks(std::size_t max_chunks) noexcept {
    max_chunks_ = max_chunks;
  }
  [[nodiscard]] std::size_t ring_chunks() const noexcept {
    return max_chunks_;
  }

  /// Random access by logical index (0 = oldest retained element).
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return chunks_[i / ChunkCap]->items[i % ChunkCap];
  }

  [[nodiscard]] const T& front() const noexcept { return (*this)[0]; }
  [[nodiscard]] const T& back() const noexcept { return (*this)[size() - 1]; }

  void clear() {
    chunks_.clear();
    spare_.clear();
    total_appended_ = 0;
    dropped_ = 0;
  }

  /// Empty the buffer but keep every chunk allocated for reuse — the arena
  /// discipline for phase-structured workloads (drain a trace between
  /// checkpoint bursts, refill during the next one) where clear()'s
  /// deallocate-and-regrow would reintroduce the allocation spike this
  /// buffer exists to avoid. Counters reset like clear(); subsequent
  /// appends refill the retained chunks before any new chunk is allocated.
  void reset_retaining_chunks() {
    for (auto& c : chunks_) {
      c->count = 0;
      spare_.push_back(std::move(c));
    }
    chunks_.clear();
    total_appended_ = 0;
    dropped_ = 0;
  }

  /// Chunks parked by reset_retaining_chunks() and not yet refilled
  /// (diagnostic: retained capacity still waiting to pay off).
  [[nodiscard]] std::size_t spare_chunks() const noexcept {
    return spare_.size();
  }

  class const_iterator {
   public:
    const_iterator(const ChunkedBuffer* buf, std::size_t i)
        : buf_(buf), i_(i) {}
    const T& operator*() const { return (*buf_)[i_]; }
    const T* operator->() const { return &(*buf_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const ChunkedBuffer* buf_;
    std::size_t i_;
  };

  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, size()}; }

 private:
  struct Chunk {
    T items[ChunkCap];
    std::size_t count = 0;
  };

  void grow() {
    if (max_chunks_ > 0 && chunks_.size() >= max_chunks_) {
      // Ring eviction: recycle the oldest chunk to the tail. The chunk's
      // storage is reused, so steady-state ring mode never allocates.
      auto oldest = std::move(chunks_.front());
      dropped_ += oldest->count;
      oldest->count = 0;
      chunks_.erase(chunks_.begin());
      chunks_.push_back(std::move(oldest));
      return;
    }
    if (!spare_.empty()) {
      chunks_.push_back(std::move(spare_.back()));
      spare_.pop_back();
      return;
    }
    chunks_.push_back(std::make_unique<Chunk>());
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::unique_ptr<Chunk>> spare_;
  std::size_t max_chunks_ = 0;
  std::uint64_t total_appended_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace sym::prof
