// symbiosys/insight.hpp
//
// Higher-level diagnosis passes built on the stitched traces, following the
// analysis activities the paper's related work motivates (§II-B: distributed
// request tracing is "effective in detecting structural and empirical
// anomalies"):
//
//  * CriticalPath  — for one request, the chain of child spans that
//    determines its end-to-end latency, with self-time attribution (which
//    single call should be optimized first?).
//  * AnomalyReport — empirical anomaly detection: per-callpath robust
//    statistics (median / MAD) over span durations, flagging requests whose
//    spans deviate by more than a configurable factor.
//  * StructuralDiff — structural anomaly detection: groups requests by the
//    multiset of callpaths they execute and reports minority structures
//    (requests that took a different path through the service).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "symbiosys/analysis.hpp"

namespace sym::prof {

// ---------------------------------------------------------------------------
// Critical path
// ---------------------------------------------------------------------------

struct CriticalPathStep {
  Breadcrumb breadcrumb = 0;
  sim::TimeNs start = 0;
  sim::TimeNs end = 0;
  /// Time attributable to this span alone (duration minus the covered
  /// child-on-critical-path time).
  sim::DurationNs self_ns = 0;
};

struct CriticalPath {
  std::uint64_t request_id = 0;
  sim::DurationNs total_ns = 0;
  std::vector<CriticalPathStep> steps;  ///< root first

  /// The step with the largest self time (the optimization target).
  [[nodiscard]] const CriticalPathStep* dominant() const;

  [[nodiscard]] std::string format() const;
};

/// Extract the critical path of one stitched request: starting from the
/// root span, repeatedly descend into the child span that covers the
/// latest-ending portion of the parent's interval.
[[nodiscard]] CriticalPath critical_path(const RequestTrace& rt);

// ---------------------------------------------------------------------------
// Empirical anomalies
// ---------------------------------------------------------------------------

struct SpanAnomaly {
  std::uint64_t request_id = 0;
  Breadcrumb breadcrumb = 0;
  sim::DurationNs duration_ns = 0;
  double deviation = 0;  ///< |x - median| / MAD
};

struct CallpathLatencyStats {
  Breadcrumb breadcrumb = 0;
  std::size_t samples = 0;
  double median_ns = 0;
  double mad_ns = 0;  ///< median absolute deviation
  double max_ns = 0;
};

struct AnomalyReport {
  std::vector<CallpathLatencyStats> per_callpath;
  std::vector<SpanAnomaly> anomalies;  ///< sorted by deviation, descending

  [[nodiscard]] std::string format(std::size_t top_n = 10) const;
};

/// Detect spans whose duration deviates from their callpath's median by
/// more than `threshold` MADs (callpaths with fewer than `min_samples`
/// spans are skipped).
[[nodiscard]] AnomalyReport detect_anomalies(const TraceSummary& summary,
                                             double threshold = 5.0,
                                             std::size_t min_samples = 8);

// ---------------------------------------------------------------------------
// Structural anomalies
// ---------------------------------------------------------------------------

struct StructureGroup {
  /// Sorted (breadcrumb, count) signature of the request's span multiset.
  std::vector<std::pair<Breadcrumb, std::uint32_t>> signature;
  std::vector<std::uint64_t> request_ids;

  [[nodiscard]] std::size_t size() const noexcept {
    return request_ids.size();
  }
};

struct StructuralDiff {
  std::vector<StructureGroup> groups;  ///< sorted by size, descending

  /// Requests whose structure differs from the majority group's.
  [[nodiscard]] std::vector<std::uint64_t> minority_requests() const;

  [[nodiscard]] std::string format() const;
};

/// Group requests sharing the same root callpath by span-structure
/// signature. `root_leaf` = hash16 of the root RPC name (0 = all requests).
[[nodiscard]] StructuralDiff structural_diff(const TraceSummary& summary,
                                             std::uint16_t root_leaf = 0);

}  // namespace sym::prof
