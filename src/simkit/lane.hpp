// simkit/lane.hpp
//
// One shard of the discrete-event engine. A Lane owns everything the old
// single-threaded engine owned — a 4-ary heap of generation-tagged event
// slots, a virtual clock, a FIFO sequence counter and an independently
// seeded Rng stream — for the subset of simulated nodes mapped to it
// (node % lane_count). During a safe window (see engine.hpp) every lane is
// executed by exactly one worker thread and touches only lane-local state;
// events destined for another lane are appended to a per-destination outbox
// that the coordinator merges at the window barrier in (src-lane, append)
// order, which keeps the merged schedule independent of the worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "simkit/debug_checks.hpp"
#include "simkit/rng.hpp"
#include "simkit/time.hpp"

namespace sym::sim {

class Engine;

class Lane {
 public:
  using Callback = std::function<void()>;

  Lane(std::uint32_t index, std::uint64_t seed, std::uint32_t lane_count);
  ~Lane();
  Lane(const Lane&) = delete;
  Lane& operator=(const Lane&) = delete;

  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }
  [[nodiscard]] TimeNs now() const noexcept { return now_; }
  [[nodiscard]] Rng& rng() noexcept {
    // The Rng stream is lane-owned state: a draw from a foreign worker both
    // races and perturbs the stream the home lane's events replay.
    debug::assert_home_lane(this, "Lane::rng");
    return rng_;
  }
  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  /// Rolling digest of the executed event stream (timestamp + FIFO sequence
  /// of every event run), folded per lane. Only maintained under
  /// -DSYM_DEBUG_CHECKS=ON (always 0 otherwise); the debug_checks test
  /// suite compares Engine::event_digest() across worker counts so a
  /// determinism regression fails loudly instead of skewing figures.
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

  /// Schedule `cb` at absolute time `t` (clamped to now()). Returns the
  /// slot/generation half of an Engine::EventId (lane bits added by the
  /// engine). Must only be called from the thread currently executing this
  /// lane, or while no window is executing.
  std::uint64_t schedule(TimeNs t, Callback cb);

  /// Cancel by slot index + 28-bit generation. Same threading rule as
  /// schedule().
  bool cancel(std::uint32_t slot, std::uint32_t generation);

  /// Append a cross-lane event to this (source) lane's outbox for `dst`.
  /// Delivered — with a sequence number assigned deterministically — when
  /// the coordinator merges outboxes at the next window barrier. The first
  /// post to a given destination since the last merge registers the pair in
  /// dirty_outboxes(), so the merge sweep can walk only live pairs.
  void post_remote(std::uint32_t dst, TimeNs t, Callback cb);

  /// Destination lanes this lane has posted to since the last merge, in
  /// first-post order (each destination listed once). The coordinator sorts
  /// the union of these lists into canonical (dst, src) order, absorbs
  /// exactly those pairs, and calls clear_dirty_outboxes().
  [[nodiscard]] const std::vector<std::uint32_t>& dirty_outboxes()
      const noexcept {
    return dirty_dst_;
  }
  void clear_dirty_outboxes() noexcept { dirty_dst_.clear(); }

  /// Next-event cache invalidation handshake with the engine's incremental
  /// next-event index: any mutation that can move the heap top (schedule,
  /// cancel, pop) sets the flag; the engine consumes it when it refreshes
  /// the cached next-event time for this lane. Only touched by the thread
  /// currently owning the lane (or the coordinator between windows).
  [[nodiscard]] bool take_next_dirty() noexcept {
    const bool d = next_dirty_;
    next_dirty_ = false;
    return d;
  }

  /// Count of merged cross-lane events that arrived with a timestamp below
  /// this lane's clock (possible only under speculative quiet-window
  /// extension; such events are clamped to now(), deterministically).
  [[nodiscard]] std::uint64_t causality_clamps() const noexcept {
    return causality_clamps_;
  }

  /// Execute the single earliest event. Returns false if the lane is empty.
  bool pop_and_run();

  /// Execute every event with timestamp strictly below `end`, including
  /// events scheduled onto this lane while the window runs.
  std::size_t run_window(TimeNs end);

  /// Surface the earliest live (non-cancelled) event time. Returns false if
  /// the lane holds no live events.
  bool peek_next(TimeNs& t);

  /// Drain `src`'s outbox for this lane into this lane's heap, preserving
  /// append order. Called by the coordinator between windows.
  void absorb_outbox_from(Lane& src);

 private:
  /// Heap entries are 24 bytes (no callback): the callback lives in the
  /// slot table, so sift operations move small PODs only.
  struct HeapEntry {
    TimeNs t;
    std::uint64_t seq;  ///< monotonically increasing FIFO tie-break
    std::uint32_t slot;
  };

  struct Slot {
    Callback cb;
    std::uint32_t generation = 1;
    std::uint32_t next_free = 0;
    bool in_use = false;
    bool cancelled = false;
  };

  struct RemoteEvent {
    TimeNs t;
    Callback cb;
  };

  static constexpr std::uint32_t kNoFreeSlot = 0xFFFFFFFFu;

  [[nodiscard]] static bool before(const HeapEntry& a,
                                   const HeapEntry& b) noexcept {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx) noexcept;

  void heap_push(HeapEntry e);
  /// Remove and return the top entry (caller checks non-empty).
  HeapEntry heap_pop();
  /// Drop cancelled entries off the top, releasing their slots.
  void drop_cancelled_top();

  std::uint32_t index_;
  TimeNs now_ = 0;
  std::uint64_t digest_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::uint64_t causality_clamps_ = 0;
  std::size_t pending_ = 0;
  bool next_dirty_ = true;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFreeSlot;
  Rng rng_;
  std::vector<std::vector<RemoteEvent>> outbox_;  ///< one per destination lane
  std::vector<std::uint32_t> dirty_dst_;  ///< destinations with pending posts
};

}  // namespace sym::sim
