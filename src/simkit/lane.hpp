// simkit/lane.hpp
//
// One shard of the discrete-event engine. A Lane owns everything the old
// single-threaded engine owned — a d-ary heap of generation-tagged event
// slots (fanout via the SYM_HEAP_FANOUT knob, see dheap.hpp), a virtual
// clock, a FIFO sequence counter and an independently seeded Rng stream —
// for the subset of simulated nodes mapped to it (node % lane_count). During
// a safe window (see engine.hpp) every lane is executed by exactly one
// worker thread and touches only lane-local state; events destined for
// another lane are appended to a per-destination outbox that the coordinator
// merges at the window barrier in (src-lane, append) order, which keeps the
// merged schedule independent of the worker count.
//
// Memory model: every per-event byte lives in the lane's arena (arena.hpp)
// or in vectors the lane recycles in place. Callbacks are SmallFn (inline
// capture buffer, no per-event malloc), event slots come from LaneArena's
// intrusive freelist, and heap/outbox vectors only grow to the workload's
// high-water mark. ArenaStats counts every departure from that steady state
// so benches can assert allocations-per-event == 0 after warmup.
#pragma once

#include <cstdint>
#include <vector>

#include "simkit/arena.hpp"
#include "simkit/debug_checks.hpp"
#include "simkit/dheap.hpp"
#include "simkit/rng.hpp"
#include "simkit/smallfn.hpp"
#include "simkit/time.hpp"

namespace sym::sim {

class Engine;

class Lane {
 public:
  using Callback = SmallFn;

  Lane(std::uint32_t index, std::uint64_t seed, std::uint32_t lane_count);
  ~Lane();
  Lane(const Lane&) = delete;
  Lane& operator=(const Lane&) = delete;

  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }
  [[nodiscard]] TimeNs now() const noexcept { return now_; }
  [[nodiscard]] Rng& rng() noexcept {
    // The Rng stream is lane-owned state: a draw from a foreign worker both
    // races and perturbs the stream the home lane's events replay.
    debug::assert_home_lane(this, "Lane::rng");
    return rng_;
  }
  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  /// Rolling digest of the executed event stream (timestamp + FIFO sequence
  /// of every event run), folded per lane. Only maintained under
  /// -DSYM_DEBUG_CHECKS=ON (always 0 otherwise); the debug_checks test
  /// suite compares Engine::event_digest() across worker counts so a
  /// determinism regression fails loudly instead of skewing figures.
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

  /// Allocation accounting for this lane's event path (slot table, heap,
  /// outboxes, SmallFn spills). Pure simulation state: identical across
  /// worker counts for identical schedules.
  [[nodiscard]] const ArenaStats& arena_stats() const noexcept {
    return arena_.stats;
  }

  /// Slots ever created in the arena (live + freelisted): the high-water
  /// mark the recycling tests compare across identical phases.
  [[nodiscard]] std::uint32_t arena_slot_count() const noexcept {
    return arena_.slot_count();
  }

  /// Pre-size the slot table and event heap for a known steady state so the
  /// run never grows containers mid-flight.
  void reserve_events(std::uint32_t n);

  /// Pre-size the outbox buffer for destination `dst`. Outboxes retain
  /// their capacity across window merges, so seeding them with a measured
  /// high-water mark removes the last growth source on the post path.
  void reserve_outbox(std::uint32_t dst, std::uint32_t n);

  /// Largest size the outbox for `dst` ever reached (capacity planning for
  /// reserve_outbox on a subsequent identical run).
  [[nodiscard]] std::uint32_t outbox_highwater(std::uint32_t dst) const noexcept {
    return outbox_hw_[dst];
  }

  /// Schedule `cb` at absolute time `t` (clamped to now()). Returns the
  /// slot/generation half of an Engine::EventId (lane bits added by the
  /// engine). Must only be called from the thread currently executing this
  /// lane, or while no window is executing.
  std::uint64_t schedule(TimeNs t, Callback cb);

  /// Cancel by slot index + 28-bit generation. Same threading rule as
  /// schedule().
  bool cancel(std::uint32_t slot, std::uint32_t generation);

  /// Append a cross-lane event to this (source) lane's outbox for `dst`.
  /// Delivered — with a sequence number assigned deterministically — when
  /// the coordinator merges outboxes at the next window barrier. The first
  /// post to a given destination since the last merge registers the pair in
  /// dirty_outboxes(), so the merge sweep can walk only live pairs.
  void post_remote(std::uint32_t dst, TimeNs t, Callback cb);

  /// Destination lanes this lane has posted to since the last merge, in
  /// first-post order (each destination listed once). The coordinator sorts
  /// the union of these lists into canonical (dst, src) order, absorbs
  /// exactly those pairs, and calls clear_dirty_outboxes().
  [[nodiscard]] const std::vector<std::uint32_t>& dirty_outboxes()
      const noexcept {
    return dirty_dst_;
  }
  void clear_dirty_outboxes() noexcept { dirty_dst_.clear(); }

  /// Next-event cache invalidation handshake with the engine's incremental
  /// next-event index: any mutation that can move the heap top (schedule,
  /// cancel, pop) sets the flag; the engine consumes it when it refreshes
  /// the cached next-event time for this lane. Only touched by the thread
  /// currently owning the lane (or the coordinator between windows).
  [[nodiscard]] bool take_next_dirty() noexcept {
    const bool d = next_dirty_;
    next_dirty_ = false;
    return d;
  }

  /// Count of merged cross-lane events that arrived with a timestamp below
  /// this lane's clock (possible only under speculative quiet-window
  /// extension; such events are clamped to now(), deterministically).
  [[nodiscard]] std::uint64_t causality_clamps() const noexcept {
    return causality_clamps_;
  }

  /// Execute the single earliest event. Returns false if the lane is empty.
  bool pop_and_run();

  /// Execute every event with timestamp strictly below `end`, including
  /// events scheduled onto this lane while the window runs.
  std::size_t run_window(TimeNs end);

  /// Surface the earliest live (non-cancelled) event time. Returns false if
  /// the lane holds no live events.
  bool peek_next(TimeNs& t);

  /// Drain `src`'s outbox for this lane into this lane's heap, preserving
  /// append order. Called by the coordinator between windows.
  void absorb_outbox_from(Lane& src);

 private:
  /// Heap entries are 24 bytes (no callback): the callback lives in the
  /// arena's cold array, so sift operations move small PODs only.
  struct HeapEntry {
    TimeNs t;
    std::uint64_t seq;  ///< monotonically increasing FIFO tie-break
    std::uint32_t slot;
  };

  struct RemoteEvent {
    TimeNs t;
    Callback cb;
  };

  [[nodiscard]] static bool before(const HeapEntry& a,
                                   const HeapEntry& b) noexcept {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  void heap_push(HeapEntry e);
  /// Remove and return the top entry (caller checks non-empty).
  HeapEntry heap_pop();
  /// Drop cancelled entries off the top, releasing their slots.
  void drop_cancelled_top();

  std::uint32_t index_;
  TimeNs now_ = 0;
  std::uint64_t digest_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::uint64_t causality_clamps_ = 0;
  std::size_t pending_ = 0;
  bool next_dirty_ = true;
  std::vector<HeapEntry> heap_;
  LaneArena arena_;
  Rng rng_;
  std::vector<std::vector<RemoteEvent>> outbox_;  ///< one per destination lane
  std::vector<std::uint32_t> outbox_hw_;  ///< per-destination size high-water
  std::vector<std::uint32_t> dirty_dst_;  ///< destinations with pending posts
};

}  // namespace sym::sim
