// simkit/arena.hpp
//
// LaneArena — lane-local event-slot arena. Each Lane owns one arena holding
// the slot table of every pending event in an SoA split: the *hot* array
// (generation tag, freelist link, liveness flags — the fields cancel() and
// the cancelled-entry drop test touch) is 12 bytes per slot and packs five
// slots per cache line, while the *cold* array holds the SmallFn callback
// payload that is only touched twice per event (store on schedule, move-out
// on execution). Slots recycle through an intrusive freelist with the same
// generation-tag discipline the AoS table used, so EventIds from fired
// events keep failing the generation check.
//
// The arena is the unit of the zero-allocation steady-state invariant: once
// the slot table, the event heap and the outbox buffers have grown to the
// workload's high-water mark, a run performs no malloc/free per event —
// slots come from the freelist, heap pushes reuse vector capacity, and
// SmallFn captures stay inline. ArenaStats counts every departure from that
// state (container growth, inline-capture spill), which is what the
// allocations-per-event column in BENCH_scale.json / BENCH_scaling.json
// reports and the bench_scale_smoke ctest gates on: after warmup the delta
// must be zero. Wall-clock never enters the counters, so they are identical
// across worker counts.
#pragma once

#include <cstdint>
#include <vector>

#include "simkit/smallfn.hpp"

namespace sym::sim {

/// Allocation accounting for one lane. All counters are simulation state
/// (they depend only on the schedule), never wall time.
struct ArenaStats {
  /// Vector reallocations: slot table, event heap, outbox buffers and the
  /// dirty-destination list growing past capacity.
  std::uint64_t container_growths = 0;
  /// SmallFn captures that spilled past the inline buffer.
  std::uint64_t fn_heap_spills = 0;
  /// Slots served from the freelist (steady-state recycling hits).
  std::uint64_t slots_recycled = 0;

  /// Heap allocations attributable to the event path: what the
  /// allocations-per-event bench columns divide by executed events.
  [[nodiscard]] std::uint64_t allocations() const noexcept {
    return container_growths + fn_heap_spills;
  }

  ArenaStats& operator+=(const ArenaStats& o) noexcept {
    container_growths += o.container_growths;
    fn_heap_spills += o.fn_heap_spills;
    slots_recycled += o.slots_recycled;
    return *this;
  }
};

class LaneArena {
 public:
  static constexpr std::uint32_t kNoFreeSlot = 0xFFFFFFFFu;
  static constexpr std::uint8_t kInUse = 0x1;
  static constexpr std::uint8_t kCancelled = 0x2;

  struct SlotHot {
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNoFreeSlot;
    std::uint8_t flags = 0;
  };

  /// Acquire a slot (freelist first, growth otherwise). The returned slot is
  /// marked in-use with a cleared cancel flag; its callback is empty.
  std::uint32_t acquire() {
    std::uint32_t idx;
    if (free_head_ != kNoFreeSlot) {
      idx = free_head_;
      free_head_ = hot_[idx].next_free;
      ++stats.slots_recycled;
    } else {
      idx = static_cast<std::uint32_t>(hot_.size());
      if (hot_.size() == hot_.capacity() || cb_.size() == cb_.capacity()) {
        ++stats.container_growths;
      }
      hot_.emplace_back();
      cb_.emplace_back();
    }
    SlotHot& s = hot_[idx];
    s.flags = kInUse;
    return idx;
  }

  /// Release a slot: destroy the callback, invalidate outstanding ids via
  /// the generation bump, and push onto the freelist.
  void release(std::uint32_t idx) noexcept {
    SlotHot& s = hot_[idx];
    cb_[idx] = nullptr;
    s.flags = 0;
    ++s.generation;
    s.next_free = free_head_;
    free_head_ = idx;
  }

  [[nodiscard]] SlotHot& hot(std::uint32_t idx) noexcept { return hot_[idx]; }
  [[nodiscard]] const SlotHot& hot(std::uint32_t idx) const noexcept {
    return hot_[idx];
  }
  [[nodiscard]] SmallFn& cb(std::uint32_t idx) noexcept { return cb_[idx]; }

  /// Slots ever created (live + freelisted): the arena's high-water mark.
  [[nodiscard]] std::uint32_t slot_count() const noexcept {
    return static_cast<std::uint32_t>(hot_.size());
  }

  /// Pre-size the table so a known steady state never grows mid-run.
  void reserve(std::uint32_t n) {
    hot_.reserve(n);
    cb_.reserve(n);
  }

  ArenaStats stats;

 private:
  std::vector<SlotHot> hot_;
  std::vector<SmallFn> cb_;
  std::uint32_t free_head_ = kNoFreeSlot;
};

}  // namespace sym::sim
