#include "simkit/fiber.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

// AddressSanitizer tracks one stack per thread; ucontext switches move
// execution to heap-allocated fiber stacks behind its back, which produces
// false "stack-buffer-overflow" reports deep in fiber frames. The
// __sanitizer_{start,finish}_switch_fiber handshake tells ASan about every
// switch: start_switch announces the destination stack before jumping,
// finish_switch runs first thing on the destination. Plain builds compile
// the helpers to nothing.
#if defined(__SANITIZE_ADDRESS__)
#define SYM_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SYM_ASAN_FIBERS 1
#endif
#endif
#ifdef SYM_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

// ThreadSanitizer models one execution context per thread; ucontext
// switches would otherwise make it see torn stacks and bogus races between
// a fiber and its scheduler. The __tsan_*_fiber API declares each fiber as
// its own context and announces every switch (the default flags establish
// happens-before across the switch). Plain builds compile the helpers to
// nothing.
#if defined(__SANITIZE_THREAD__)
#define SYM_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SYM_TSAN_FIBERS 1
#endif
#endif
#ifdef SYM_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace sym::sim {
namespace {

// symlint: allow(shared-state-escape) reason=thread_local current-fiber cursor; lanes are pinned to one worker so a fiber never observes another thread's cursor
thread_local Fiber* g_current_fiber = nullptr;

inline void asan_start_switch(void** fake_stack_save, const void* bottom,
                              std::size_t size) {
#ifdef SYM_ASAN_FIBERS
  __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
  (void)fake_stack_save;
  (void)bottom;
  (void)size;
#endif
}

inline void asan_finish_switch(void* fake_stack_save, const void** bottom_old,
                               std::size_t* size_old) {
#ifdef SYM_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(fake_stack_save, bottom_old, size_old);
#else
  (void)fake_stack_save;
  (void)bottom_old;
  (void)size_old;
#endif
}

inline void* tsan_current_fiber() {
#ifdef SYM_TSAN_FIBERS
  return __tsan_get_current_fiber();
#else
  return nullptr;
#endif
}

inline void tsan_switch_to(void* fiber) {
#ifdef SYM_TSAN_FIBERS
  if (fiber != nullptr) __tsan_switch_to_fiber(fiber, 0);
#else
  (void)fiber;
#endif
}

inline void* tsan_create_fiber() {
#ifdef SYM_TSAN_FIBERS
  return __tsan_create_fiber(0);
#else
  return nullptr;
#endif
}

inline void tsan_destroy_fiber(void* fiber) {
#ifdef SYM_TSAN_FIBERS
  if (fiber != nullptr) __tsan_destroy_fiber(fiber);
#else
  (void)fiber;
#endif
}

}  // namespace

#ifdef SYM_FIBER_FAST_SWITCH

// Save the System V x86-64 callee-saved registers on the current stack,
// park the stack pointer in *save_sp, adopt target_sp and restore its saved
// registers; `ret` then resumes wherever the target context last saved (or,
// on first entry, the trampoline address planted by switch_in). Caller-saved
// state needs no handling: from the compiler's view this is an ordinary
// opaque call. The signal mask is deliberately NOT switched — that is the
// entire speedup over swapcontext (no rt_sigprocmask round trips) and is
// sound because fibers never alter it.
extern "C" void sym_fiber_asm_switch(void** save_sp, void* target_sp);
asm(R"(
.text
.align 16
.globl sym_fiber_asm_switch
.type sym_fiber_asm_switch, @function
sym_fiber_asm_switch:
    .cfi_startproc
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    movq %rsp, (%rdi)
    movq %rsi, %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    ret
    .cfi_endproc
.size sym_fiber_asm_switch, .-sym_fiber_asm_switch
)");

#endif  // SYM_FIBER_FAST_SWITCH

// ---------------------------------------------------------------------------
// FiberStack / StackPool
// ---------------------------------------------------------------------------

FiberStack::FiberStack(std::size_t size) : size_(size) {
  // Plain heap allocation: large blocks come from mmap and commit lazily,
  // so thousands of mostly-idle fiber stacks stay cheap.
  base_ = ::operator new(size);
}

FiberStack::~FiberStack() { ::operator delete(base_); }

StackPool& StackPool::instance() {
  // One pool per thread: each engine lane is pinned to a single worker, so
  // a lane's fibers always acquire and release on the same pool with no
  // synchronization. Single-threaded runs see exactly the old process-wide
  // behavior.
  // symlint: allow(shared-state-escape) reason=per-thread stack pool; lane pinning guarantees acquire and release happen on the same thread (see comment above)
  static thread_local StackPool pool;
  return pool;
}

std::unique_ptr<FiberStack> StackPool::acquire(std::size_t size) {
  if (!pool_.empty() && pool_.back()->size() >= size) {
    auto stack = std::move(pool_.back());
    pool_.pop_back();
    return stack;
  }
  ++allocated_;
  // symlint: allow(may-allocate) reason=pool-miss growth path, counted in
  // allocated_; steady state recycles stacks and never reaches this line
  return std::make_unique<FiberStack>(size);
}

void StackPool::release(std::unique_ptr<FiberStack> stack) {
  constexpr std::size_t kMaxPooled = 4096;
  if (pool_.size() < kMaxPooled) pool_.push_back(std::move(stack));
}

void StackPool::drain() { pool_.clear(); }

// ---------------------------------------------------------------------------
// Fiber
// ---------------------------------------------------------------------------

Fiber::Fiber(std::function<void()> entry, std::size_t stack_size)
    : entry_(std::move(entry)),
      stack_(StackPool::instance().acquire(stack_size)) {
  assert(entry_ && "fiber requires an entry function");
}

Fiber::~Fiber() {
  assert(g_current_fiber != this && "a fiber cannot destroy itself");
  // Returning a live (suspended, unfinished) fiber's stack to the pool would
  // corrupt it on reuse; only recycle stacks of never-started or finished
  // fibers. Abandoning a suspended fiber simply frees the stack.
  if (!started_ || finished_) {
    StackPool::instance().release(std::move(stack_));
  }
  tsan_destroy_fiber(tsan_fiber_);
}

Fiber* Fiber::current() noexcept { return g_current_fiber; }

void Fiber::run_entry() { entry_(); }

#ifdef SYM_FIBER_FAST_SWITCH

// First instructions ever executed on a fiber stack: switch_in() plants this
// function's address as the `ret` target of sym_fiber_asm_switch, with six
// zeroed register slots below it. g_current_fiber is set by switch_in()
// before the switch, so no argument registers need to survive the swap.
void Fiber::fast_trampoline() {
  Fiber* self = g_current_fiber;
  asan_finish_switch(nullptr, &self->asan_sched_bottom_,
                     &self->asan_sched_size_);
  self->run_entry();
  // Mark finished *before* the final switch back to the scheduler.
  self->finished_ = true;
  asan_start_switch(nullptr, self->asan_sched_bottom_,
                    self->asan_sched_size_);
  tsan_switch_to(self->tsan_sched_);
  sym_fiber_asm_switch(&self->fast_sp_, self->fast_return_sp_);
  std::abort();  // unreachable: a finished fiber is never resumed
}

void Fiber::switch_in() {
  assert(!finished_ && "cannot resume a finished fiber");
  assert(g_current_fiber == nullptr && "nested fibers are not supported");
  if (!started_) {
    started_ = true;
    // Lay out the initial context by hand: the trampoline address sits at a
    // 16-byte-aligned slot (so rsp ≡ 8 mod 16 at function entry, as after a
    // call), with the six callee-saved register slots zeroed below it.
    auto top = reinterpret_cast<std::uintptr_t>(stack_->base()) +
               stack_->size();
    top &= ~static_cast<std::uintptr_t>(15);
    top -= 16;  // headroom; keeps the ret-target slot 16-aligned
    *reinterpret_cast<std::uintptr_t*>(top) =
        reinterpret_cast<std::uintptr_t>(&Fiber::fast_trampoline);
    fast_sp_ = reinterpret_cast<void*>(top - 6 * 8);
    std::memset(fast_sp_, 0, 6 * 8);
  }
  ++switches_;
  Fiber* prev = g_current_fiber;
  g_current_fiber = this;
  void* sched_fake_stack = nullptr;
  asan_start_switch(&sched_fake_stack, stack_->base(), stack_->size());
#ifdef SYM_TSAN_FIBERS
  if (tsan_fiber_ == nullptr) tsan_fiber_ = tsan_create_fiber();
  tsan_sched_ = tsan_current_fiber();
  tsan_switch_to(tsan_fiber_);
#endif
  sym_fiber_asm_switch(&fast_return_sp_, fast_sp_);
  // Back on the scheduler stack (fiber suspended or finished).
  asan_finish_switch(sched_fake_stack, nullptr, nullptr);
  g_current_fiber = prev;
}

void Fiber::switch_out() {
  Fiber* self = g_current_fiber;
  assert(self != nullptr && "switch_out() called outside any fiber");
  asan_start_switch(&self->asan_fake_stack_, self->asan_sched_bottom_,
                    self->asan_sched_size_);
  tsan_switch_to(self->tsan_sched_);
  sym_fiber_asm_switch(&self->fast_sp_, self->fast_return_sp_);
  // Resumed by a later switch_in(); refresh the scheduler-stack bounds in
  // case the resume came from a different frame.
  asan_finish_switch(self->asan_fake_stack_, &self->asan_sched_bottom_,
                     &self->asan_sched_size_);
}

#else  // !SYM_FIBER_FAST_SWITCH — portable ucontext implementation

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  // First instruction on the fiber stack: complete the switch ASan was told
  // about in switch_in(), remembering the scheduler stack for the way back.
  asan_finish_switch(nullptr, &self->asan_sched_bottom_,
                     &self->asan_sched_size_);
  self->run_entry();
  // Mark finished *before* the implicit uc_link switch back to the scheduler.
  self->finished_ = true;
  // The fiber is dying: a null fake-stack-save releases its ASan fake stack.
  asan_start_switch(nullptr, self->asan_sched_bottom_,
                    self->asan_sched_size_);
  tsan_switch_to(self->tsan_sched_);
  // Leave through an explicit swapcontext rather than falling off into the
  // uc_link fallback: returning from this function would run its
  // instrumented epilogue (__tsan_func_exit) *after* the context-switch
  // announcement above, popping the scheduler's shadow call stack for an
  // entry that was pushed on the fiber's — ~100 fiber deaths later the
  // scheduler's shadow stack underflows and libtsan crashes walking it.
  // Jumping away keeps entry/exit balanced per context; uc_link remains as
  // a safety net but is never reached.
  swapcontext(&self->ctx_, &self->return_ctx_);
  std::abort();  // unreachable: a finished fiber is never resumed
}

void Fiber::switch_in() {
  assert(!finished_ && "cannot resume a finished fiber");
  assert(g_current_fiber == nullptr && "nested fibers are not supported");
  if (!started_) {
    started_ = true;
    if (getcontext(&ctx_) != 0) throw std::runtime_error("getcontext failed");
    ctx_.uc_stack.ss_sp = stack_->base();
    ctx_.uc_stack.ss_size = stack_->size();
    ctx_.uc_link = &return_ctx_;
    const auto ptr = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(ptr >> 32),
                static_cast<unsigned>(ptr & 0xFFFFFFFFu));
  }
  ++switches_;
  Fiber* prev = g_current_fiber;
  g_current_fiber = this;
  void* sched_fake_stack = nullptr;
  asan_start_switch(&sched_fake_stack, stack_->base(), stack_->size());
#ifdef SYM_TSAN_FIBERS
  if (tsan_fiber_ == nullptr) tsan_fiber_ = tsan_create_fiber();
  // Remember the scheduler's TSan context on every entry: a resume may come
  // from a different scheduler frame (or, across runs, a different thread).
  tsan_sched_ = tsan_current_fiber();
  tsan_switch_to(tsan_fiber_);
#endif
  if (swapcontext(&return_ctx_, &ctx_) != 0) {
    g_current_fiber = prev;
    throw std::runtime_error("swapcontext into fiber failed");
  }
  // Back on the scheduler stack (fiber suspended or finished).
  asan_finish_switch(sched_fake_stack, nullptr, nullptr);
  g_current_fiber = prev;
}

void Fiber::switch_out() {
  Fiber* self = g_current_fiber;
  assert(self != nullptr && "switch_out() called outside any fiber");
  asan_start_switch(&self->asan_fake_stack_, self->asan_sched_bottom_,
                    self->asan_sched_size_);
  tsan_switch_to(self->tsan_sched_);
  if (swapcontext(&self->ctx_, &self->return_ctx_) != 0) {
    throw std::runtime_error("swapcontext out of fiber failed");
  }
  // Resumed by a later switch_in(); refresh the scheduler-stack bounds in
  // case the resume came from a different frame.
  asan_finish_switch(self->asan_fake_stack_, &self->asan_sched_bottom_,
                     &self->asan_sched_size_);
}

#endif  // SYM_FIBER_FAST_SWITCH

}  // namespace sym::sim
