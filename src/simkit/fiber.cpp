#include "simkit/fiber.hpp"

#include <cassert>
#include <cstdlib>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sym::sim {
namespace {

thread_local Fiber* g_current_fiber = nullptr;

}  // namespace

// ---------------------------------------------------------------------------
// FiberStack / StackPool
// ---------------------------------------------------------------------------

FiberStack::FiberStack(std::size_t size) : size_(size) {
  // Plain heap allocation: large blocks come from mmap and commit lazily,
  // so thousands of mostly-idle fiber stacks stay cheap.
  base_ = ::operator new(size);
}

FiberStack::~FiberStack() { ::operator delete(base_); }

StackPool& StackPool::instance() {
  static StackPool pool;
  return pool;
}

std::unique_ptr<FiberStack> StackPool::acquire(std::size_t size) {
  if (!pool_.empty() && pool_.back()->size() >= size) {
    auto stack = std::move(pool_.back());
    pool_.pop_back();
    return stack;
  }
  ++allocated_;
  return std::make_unique<FiberStack>(size);
}

void StackPool::release(std::unique_ptr<FiberStack> stack) {
  constexpr std::size_t kMaxPooled = 4096;
  if (pool_.size() < kMaxPooled) pool_.push_back(std::move(stack));
}

void StackPool::drain() { pool_.clear(); }

// ---------------------------------------------------------------------------
// Fiber
// ---------------------------------------------------------------------------

Fiber::Fiber(std::function<void()> entry, std::size_t stack_size)
    : entry_(std::move(entry)),
      stack_(StackPool::instance().acquire(stack_size)) {
  assert(entry_ && "fiber requires an entry function");
}

Fiber::~Fiber() {
  assert(g_current_fiber != this && "a fiber cannot destroy itself");
  // Returning a live (suspended, unfinished) fiber's stack to the pool would
  // corrupt it on reuse; only recycle stacks of never-started or finished
  // fibers. Abandoning a suspended fiber simply frees the stack.
  if (!started_ || finished_) {
    StackPool::instance().release(std::move(stack_));
  }
}

Fiber* Fiber::current() noexcept { return g_current_fiber; }

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  self->run_entry();
  // Mark finished *before* the implicit uc_link switch back to the scheduler.
  self->finished_ = true;
  // Falling off the trampoline follows uc_link (return_ctx_), landing back
  // in switch_in()'s caller.
}

void Fiber::run_entry() { entry_(); }

void Fiber::switch_in() {
  assert(!finished_ && "cannot resume a finished fiber");
  assert(g_current_fiber == nullptr && "nested fibers are not supported");
  if (!started_) {
    started_ = true;
    if (getcontext(&ctx_) != 0) throw std::runtime_error("getcontext failed");
    ctx_.uc_stack.ss_sp = stack_->base();
    ctx_.uc_stack.ss_size = stack_->size();
    ctx_.uc_link = &return_ctx_;
    const auto ptr = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(ptr >> 32),
                static_cast<unsigned>(ptr & 0xFFFFFFFFu));
  }
  ++switches_;
  Fiber* prev = g_current_fiber;
  g_current_fiber = this;
  if (swapcontext(&return_ctx_, &ctx_) != 0) {
    g_current_fiber = prev;
    throw std::runtime_error("swapcontext into fiber failed");
  }
  g_current_fiber = prev;
}

void Fiber::switch_out() {
  Fiber* self = g_current_fiber;
  assert(self != nullptr && "switch_out() called outside any fiber");
  if (swapcontext(&self->ctx_, &self->return_ctx_) != 0) {
    throw std::runtime_error("swapcontext out of fiber failed");
  }
}

}  // namespace sym::sim
