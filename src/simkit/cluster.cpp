#include "simkit/cluster.hpp"

#include <cassert>
#include <cmath>
#include <memory>

namespace sym::sim {

TimeNs Node::reserve_nic(TimeNs now, std::uint64_t bytes,
                         double bw_bytes_per_ns) {
  // NIC serialization state is owned by the lane that owns this node; a
  // reservation from a foreign lane would race and reorder transfers.
  debug::assert_home_lane(this, "Node::reserve_nic");
  assert(bw_bytes_per_ns > 0.0);
  const TimeNs start = now > nic_busy_until_ ? now : nic_busy_until_;
  const auto xfer =
      static_cast<DurationNs>(std::llround(static_cast<double>(bytes) /
                                           bw_bytes_per_ns));
  nic_busy_until_ = start + xfer;
  nic_bytes_total_ += bytes;
  return nic_busy_until_;
}

double Process::cpu_utilization(TimeNs since, TimeNs now,
                                unsigned cores) const noexcept {
  if (now <= since || cores == 0) return 0.0;
  const DurationNs busy = cpu_time_ - cpu_checkpoint_value_;
  const double window = static_cast<double>(now - since) * cores;
  const double util = static_cast<double>(busy) / window;
  return util > 1.0 ? 1.0 : util;
}

Cluster::Cluster(Engine& engine, ClusterParams params)
    : engine_(engine), params_(params) {
  // Resolve the engine's lane topology before anything is scheduled or any
  // random draw is made: auto-sharding maps one lane per node, and the
  // conservative lookahead is the minimum delay of any cross-node (hence
  // cross-lane) event insertion — one inter-node link latency; serialization
  // and per-message overhead only add to it.
  engine_.shard_for_nodes(params_.node_count);
  if (engine_.parallel() && engine_.lookahead() == 0) {
    engine_.set_lookahead(params_.inter_node_latency);
  }
  nodes_.reserve(params_.node_count);
  for (NodeId id = 0; id < params_.node_count; ++id) {
    std::int64_t skew = 0;
    if (id != 0 && params_.max_clock_skew > 0) {
      const auto span = static_cast<std::uint64_t>(params_.max_clock_skew);
      skew = static_cast<std::int64_t>(engine_.rng().uniform(2 * span + 1)) -
             static_cast<std::int64_t>(span);
    }
    nodes_.emplace_back(id, skew);
  }
  // nodes_ was reserved to its final size above, so the addresses are
  // stable for the cluster's lifetime — register each node's home lane.
  for (NodeId id = 0; id < params_.node_count; ++id) {
    debug::bind_home_lane(&nodes_[id], engine_.lane_for_node(id));
  }
}

Cluster::~Cluster() {
  for (auto& n : nodes_) debug::unbind_home_lane(&n);
}

Process& Cluster::spawn_process(NodeId node, std::string name) {
  assert(node < nodes_.size());
  const auto pid = static_cast<ProcessId>(processes_.size());
  processes_.push_back(std::make_unique<Process>(pid, node, std::move(name)));
  return *processes_.back();
}

}  // namespace sym::sim
