#include "simkit/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <utility>

namespace sym::sim {

TimeNs Node::reserve_nic(TimeNs now, std::uint64_t bytes,
                         double bw_bytes_per_ns) {
  // NIC serialization state is owned by the lane that owns this node; a
  // reservation from a foreign lane would race and reorder transfers.
  debug::assert_home_lane(this, "Node::reserve_nic");
  assert(bw_bytes_per_ns > 0.0);
  const TimeNs start = now > nic_busy_until_ ? now : nic_busy_until_;
  const auto xfer =
      static_cast<DurationNs>(std::llround(static_cast<double>(bytes) /
                                           bw_bytes_per_ns));
  nic_busy_until_ = start + xfer;
  nic_bytes_total_ += bytes;
  return nic_busy_until_;
}

double Process::cpu_utilization(TimeNs since, TimeNs now,
                                unsigned cores) const noexcept {
  if (now <= since || cores == 0) return 0.0;
  const DurationNs busy = cpu_time_ - cpu_checkpoint_value_;
  const double window = static_cast<double>(now - since) * cores;
  const double util = static_cast<double>(busy) / window;
  return util > 1.0 ? 1.0 : util;
}

Cluster::Cluster(Engine& engine, ClusterParams params)
    : engine_(engine), params_(std::move(params)) {
  // Resolve the engine's lane topology before anything is scheduled or any
  // random draw is made: auto-sharding maps one lane per node.
  engine_.shard_for_nodes(params_.node_count);
  // Normalize the link overrides into a sorted symmetric index (duplicate
  // pairs keep the smallest latency — the conservative choice for
  // lookahead derivation).
  if (!params_.link_overrides.empty()) {
    override_index_.reserve(params_.link_overrides.size());
    for (const LinkOverride& o : params_.link_overrides) {
      const NodeId lo = std::min(o.a, o.b);
      const NodeId hi = std::max(o.a, o.b);
      override_index_.emplace_back(
          (static_cast<std::uint64_t>(lo) << 32) | hi, o.latency);
    }
    std::sort(override_index_.begin(), override_index_.end());
    override_index_.erase(
        std::unique(override_index_.begin(), override_index_.end(),
                    [](const auto& x, const auto& y) {
                      return x.first == y.first;
                    }),
        override_index_.end());
  }
  // The per-lane-pair lookahead is the minimum delay of any cross-node
  // (hence cross-lane) event insertion between the two lanes' node sets —
  // one link latency; serialization and per-message overhead only add to
  // it. A pinned nonzero scalar in the config skips the matrix and keeps a
  // uniform lookahead (used by tests that fix the window width).
  if (engine_.parallel() && engine_.lookahead() == 0) {
    install_lookahead_matrix();
  }
  nodes_.reserve(params_.node_count);
  for (NodeId id = 0; id < params_.node_count; ++id) {
    std::int64_t skew = 0;
    if (id != 0 && params_.max_clock_skew > 0) {
      const auto span = static_cast<std::uint64_t>(params_.max_clock_skew);
      skew = static_cast<std::int64_t>(engine_.rng().uniform(2 * span + 1)) -
             static_cast<std::int64_t>(span);
    }
    nodes_.emplace_back(id, skew);
  }
  // nodes_ was reserved to its final size above, so the addresses are
  // stable for the cluster's lifetime — register each node's home lane.
  for (NodeId id = 0; id < params_.node_count; ++id) {
    debug::bind_home_lane(&nodes_[id], engine_.lane_for_node(id));
  }
}

const DurationNs* Cluster::find_override(NodeId a, NodeId b) const noexcept {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  const std::uint64_t key = (static_cast<std::uint64_t>(lo) << 32) | hi;
  const auto it = std::lower_bound(
      override_index_.begin(), override_index_.end(), key,
      [](const auto& e, std::uint64_t k) { return e.first < k; });
  if (it == override_index_.end() || it->first != key) return nullptr;
  return &it->second;
}

void Cluster::install_lookahead_matrix() {
  const auto lanes = engine_.lane_count();
  const NodeId n = params_.node_count;
  // matrix[src][dst] = min over node pairs (a on src, b on dst) of the
  // link latency a -> b. Lanes partition the nodes, so every cross-lane
  // pair has a != b. O(node_count^2) once at construction.
  std::vector<DurationNs> matrix(static_cast<std::size_t>(lanes) * lanes,
                                 kTimeNever);
  for (NodeId a = 0; a < n; ++a) {
    const std::uint32_t la = engine_.lane_for_node(a);
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      const std::uint32_t lb = engine_.lane_for_node(b);
      if (la == lb) continue;
      auto& e = matrix[static_cast<std::size_t>(la) * lanes + lb];
      e = std::min(e, link_latency(a, b));
    }
  }
  // Lane pairs with no node pair (possible only in degenerate shardings)
  // fall back to the inter-node default rather than "unreachable".
  for (std::uint32_t s = 0; s < lanes; ++s) {
    for (std::uint32_t d = 0; d < lanes; ++d) {
      auto& e = matrix[static_cast<std::size_t>(s) * lanes + d];
      if (s != d && e == kTimeNever) e = params_.inter_node_latency;
      if (s == d) e = 0;  // diagonal ignored by the engine
    }
  }
  engine_.set_lookahead_matrix(std::move(matrix));
}

Cluster::~Cluster() {
  for (auto& n : nodes_) debug::unbind_home_lane(&n);
}

Process& Cluster::spawn_process(NodeId node, std::string name) {
  assert(node < nodes_.size());
  const auto pid = static_cast<ProcessId>(processes_.size());
  processes_.push_back(std::make_unique<Process>(pid, node, std::move(name)));
  return *processes_.back();
}

}  // namespace sym::sim
