// simkit/fiber.hpp
//
// Cooperative user-level execution contexts ("fibers") built on ucontext.
// These are the mechanism behind argolite ULTs: service handler code runs as
// real C++ on a fiber stack and cooperatively switches back to the scheduler
// (the simulation engine's main context) whenever it performs a simulated
// blocking operation.
//
// Stacks are recycled through a per-thread free list because the services
// spawn one ULT per RPC request; allocation churn would otherwise dominate
// host-side run time at scale. The pool is thread-local (one instance per
// worker thread of the sharded engine) so lanes recycle stacks without
// locking; each lane is pinned to one worker, so a fiber's stack is
// acquired and released on the same thread's pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <ucontext.h>

// Fast userspace context switch: on x86-64, glibc's swapcontext issues a
// rt_sigprocmask syscall on every switch to save/restore the signal mask —
// two syscalls per ULT suspend/resume pair, which dominates switch cost at
// millions of events. Simulated handlers never touch signal masks, so
// unsanitized builds switch via a ~20-instruction callee-saved register swap
// (sym_fiber_asm_switch in fiber.cpp). Sanitized builds keep the ucontext
// path: ASan/TSan fiber support is exercised against it, and switch cost is
// noise under instrumentation.
#if defined(__x86_64__) && !defined(__SANITIZE_ADDRESS__) && \
    !defined(__SANITIZE_THREAD__)
#if defined(__has_feature)
#if !__has_feature(address_sanitizer) && !__has_feature(thread_sanitizer)
#define SYM_FIBER_FAST_SWITCH 1
#endif
#else
#define SYM_FIBER_FAST_SWITCH 1
#endif
#endif

namespace sym::sim {

/// A reusable fiber stack. Obtained from and returned to StackPool.
class FiberStack {
 public:
  explicit FiberStack(std::size_t size);
  ~FiberStack();
  FiberStack(const FiberStack&) = delete;
  FiberStack& operator=(const FiberStack&) = delete;

  [[nodiscard]] void* base() const noexcept { return base_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  void* base_ = nullptr;
  std::size_t size_ = 0;
};

/// Per-thread recycling pool for fiber stacks of a single size class.
class StackPool {
 public:
  /// The calling thread's pool.
  static StackPool& instance();

  std::unique_ptr<FiberStack> acquire(std::size_t size);
  void release(std::unique_ptr<FiberStack> stack);

  [[nodiscard]] std::size_t pooled() const noexcept { return pool_.size(); }
  [[nodiscard]] std::uint64_t total_allocated() const noexcept {
    return allocated_;
  }

  /// Drop all pooled stacks (used by tests to check for leaks).
  void drain();

 private:
  StackPool() = default;
  std::vector<std::unique_ptr<FiberStack>> pool_;
  std::uint64_t allocated_ = 0;
};

/// A cooperative execution context. switch_in() transfers control from the
/// scheduler into the fiber; Fiber::switch_out() (called from fiber code)
/// transfers control back. When the entry function returns, the fiber is
/// `finished` and control lands back in the scheduler automatically.
class Fiber {
 public:
  static constexpr std::size_t kDefaultStackSize = 128 * 1024;

  explicit Fiber(std::function<void()> entry,
                 std::size_t stack_size = kDefaultStackSize);
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Enter (or resume) the fiber. Must be called from scheduler context.
  void switch_in();

  /// Suspend the currently running fiber and return to scheduler context.
  /// Must be called from within a fiber.
  static void switch_out();

  /// The fiber currently executing, or nullptr when in scheduler context.
  static Fiber* current() noexcept;

  [[nodiscard]] bool finished() const noexcept { return finished_; }
  [[nodiscard]] bool started() const noexcept { return started_; }

  /// Number of times this fiber has been entered (diagnostics).
  [[nodiscard]] std::uint64_t switch_count() const noexcept {
    return switches_;
  }

 private:
  static void trampoline(unsigned hi, unsigned lo);
  static void fast_trampoline();
  void run_entry();

  std::function<void()> entry_;
  std::unique_ptr<FiberStack> stack_;
  ucontext_t ctx_{};
  ucontext_t return_ctx_{};
  // Fast-switch stack pointers (x86-64 unsanitized builds; kept in the
  // layout unconditionally like the sanitizer fields below): where the fiber
  // last suspended, and where the scheduler waits for it to yield.
  void* fast_sp_ = nullptr;
  void* fast_return_sp_ = nullptr;
  bool started_ = false;
  bool finished_ = false;
  std::uint64_t switches_ = 0;

  // AddressSanitizer fiber-switch bookkeeping (unused in plain builds, kept
  // unconditional so the layout does not depend on build flags): the
  // fiber's fake stack while suspended, and the scheduler stack to restore
  // on the way out. See __sanitizer_{start,finish}_switch_fiber.
  void* asan_fake_stack_ = nullptr;
  const void* asan_sched_bottom_ = nullptr;
  std::size_t asan_sched_size_ = 0;

  // ThreadSanitizer fiber handles (same layout rule): this fiber's TSan
  // context, created lazily on first entry, and the scheduler context to
  // switch back to. See __tsan_{create,switch_to,destroy}_fiber.
  void* tsan_fiber_ = nullptr;
  void* tsan_sched_ = nullptr;
};

}  // namespace sym::sim
