#include "simkit/engine.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "simkit/window.hpp"

namespace sym::sim {

namespace {

/// Expand the engine seed into one seed per lane. Lane 0 receives the seed
/// verbatim so a single-lane engine draws exactly the historical stream;
/// higher lanes get splitmix64-derived independent streams.
std::uint64_t lane_seed(std::uint64_t seed, std::uint32_t lane) {
  if (lane == 0) return seed;
  std::uint64_t state = seed + 0x9E3779B97F4A7C15ULL * lane;
  return splitmix64(state);
}

struct ActiveLaneTls {
  Engine* engine = nullptr;
  Lane* lane = nullptr;
};

// symlint: allow(shared-state-escape) reason=thread_local active-lane cursor; each worker reads and writes only its own copy inside ActiveLaneScope
thread_local ActiveLaneTls t_active;

}  // namespace

// ---------------------------------------------------------------------------
// ActiveLaneScope
// ---------------------------------------------------------------------------

ActiveLaneScope::ActiveLaneScope(Engine& engine, Lane& lane) noexcept
    : prev_engine_(t_active.engine), prev_lane_(t_active.lane) {
  t_active.engine = &engine;
  t_active.lane = &lane;
  debug::set_current_lane(lane.index());
}

ActiveLaneScope::~ActiveLaneScope() {
  t_active.engine = prev_engine_;
  t_active.lane = prev_lane_;
  debug::set_current_lane(prev_lane_ != nullptr ? prev_lane_->index()
                                                : debug::kNoLane);
}

// ---------------------------------------------------------------------------
// Construction / lane topology
// ---------------------------------------------------------------------------

Engine::Engine(std::uint64_t seed, EngineConfig config)
    : seed_(seed), config_(config), lookahead_(config.lookahead) {
  auto_shard_ = (config_.lane_count == 0);
  const std::uint32_t n =
      auto_shard_ ? 1 : std::min(config_.lane_count, kMaxLanes);
  build_lanes(n);
}

void Engine::build_lanes(std::uint32_t count) {
  assert(count >= 1);
  lanes_.clear();
  lanes_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    lanes_.push_back(std::make_unique<Lane>(i, lane_seed(seed_, i), count));
  }
  const std::uint32_t w = config_.worker_count == 0 ? 1 : config_.worker_count;
  workers_ = std::min(w, count);
}

void Engine::shard_for_nodes(std::uint32_t node_count) {
  if (!auto_shard_ || node_count == 0) return;
  auto_shard_ = false;
  const std::uint32_t n = std::min(node_count, kMaxLanes);
  if (n == lane_count()) return;
  assert(pending_events() == 0 && events_processed() == 0 &&
         "lane topology must be fixed before any event is scheduled");
  build_lanes(n);
}

void Engine::set_lookahead(DurationNs d) noexcept {
  lookahead_ = d > 0 ? d : 1;
}

// ---------------------------------------------------------------------------
// Context-sensitive accessors
// ---------------------------------------------------------------------------

Lane* Engine::active_lane_here() const noexcept {
  return t_active.engine == this ? t_active.lane : nullptr;
}

Lane& Engine::scheduling_lane() noexcept {
  if (Lane* a = active_lane_here()) return *a;
  return *lanes_[0];
}

TimeNs Engine::now() const noexcept {
  if (const Lane* a = active_lane_here()) return a->now();
  if (lanes_.size() == 1) return lanes_[0]->now();
  return main_now_;
}

Rng& Engine::rng() noexcept { return scheduling_lane().rng(); }

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

Engine::EventId Engine::at(TimeNs t, Callback cb) {
  Lane& l = scheduling_lane();
  return make_id(l.index(), l.schedule(t, std::move(cb)));
}

Engine::EventId Engine::at_on(std::uint32_t lane, TimeNs t, Callback cb) {
  assert(lane < lanes_.size());
  Lane* a = active_lane_here();
  if (a != nullptr && a->index() != lane) {
    // Cross-lane insertion from inside a running lane: deterministic
    // mailbox, delivered at the next window barrier. The lookahead
    // guarantees t lands at or beyond the end of the current window.
    a->post_remote(lane, t, std::move(cb));
    return 0;
  }
  return make_id(lane, lanes_[lane]->schedule(t, std::move(cb)));
}

bool Engine::cancel(EventId id) {
  if (id == 0) return false;
  const auto lane = static_cast<std::uint32_t>(id >> 56);
  const auto gen = static_cast<std::uint32_t>((id >> 28) & 0x0FFFFFFFu);
  const auto slot = static_cast<std::uint32_t>(id & 0x0FFFFFFFu);
  if (lane >= lanes_.size()) return false;
#ifndef NDEBUG
  const Lane* a = active_lane_here();
  assert((a == nullptr || a->index() == lane) &&
         "cancel() must target the calling context's own lane");
#endif
  return lanes_[lane]->cancel(slot, gen);
}

// ---------------------------------------------------------------------------
// Execution — classic (single lane)
// ---------------------------------------------------------------------------

void Engine::run_classic() {
  Lane& l = *lanes_[0];
  ActiveLaneScope scope(*this, l);
  while (!stopped() && l.pop_and_run()) {
  }
}

void Engine::run_until_classic(TimeNs deadline) {
  Lane& l = *lanes_[0];
  ActiveLaneScope scope(*this, l);
  while (!stopped()) {
    // Surface the true next live event before testing the deadline.
    TimeNs t;
    if (!l.peek_next(t) || t > deadline) break;
    l.pop_and_run();
  }
}

// ---------------------------------------------------------------------------
// Execution — sharded (safe windows)
// ---------------------------------------------------------------------------

void Engine::run_windows(bool bounded, TimeNs deadline) {
  assert(lookahead_ > 0 &&
         "sharded engine requires a lookahead (set by the Cluster)");
  WindowCoordinator coord(*this, workers_);
  while (!stopped()) {
    // Next window starts at the earliest event across all lanes.
    bool any = false;
    TimeNs start = 0;
    for (auto& l : lanes_) {
      TimeNs t;
      if (l->peek_next(t) && (!any || t < start)) {
        any = true;
        start = t;
      }
    }
    if (!any) break;
    if (bounded && start > deadline) break;
    main_now_ = start;
    TimeNs end = start + lookahead_;
    if (bounded && end > deadline) end = deadline + 1;
    coord.execute_window(end);
  }
  TimeNs final = main_now_;
  for (auto& l : lanes_) final = std::max(final, l->now());
  main_now_ = final;
}

void Engine::run() {
  if (!parallel()) {
    run_classic();
    return;
  }
  run_windows(/*bounded=*/false, 0);
}

void Engine::run_until(TimeNs deadline) {
  if (!parallel()) {
    run_until_classic(deadline);
    return;
  }
  run_windows(/*bounded=*/true, deadline);
}

bool Engine::step() {
  Lane* best = nullptr;
  TimeNs bt = 0;
  for (auto& l : lanes_) {
    TimeNs t;
    if (l->peek_next(t) && (best == nullptr || t < bt)) {
      best = l.get();
      bt = t;
    }
  }
  if (best == nullptr) return false;
  {
    ActiveLaneScope scope(*this, *best);
    best->pop_and_run();
  }
  if (parallel()) {
    // Deliver any cross-lane insertions immediately: step() is sequential,
    // so the mailbox discipline is not needed for determinism.
    for (auto& dst : lanes_) dst->absorb_outbox_from(*best);
    main_now_ = std::max(main_now_, best->now());
  }
  return true;
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

std::size_t Engine::pending_events() const noexcept {
  std::size_t n = 0;
  for (const auto& l : lanes_) n += l->pending();
  return n;
}

std::uint64_t Engine::events_processed() const noexcept {
  std::uint64_t n = 0;
  for (const auto& l : lanes_) n += l->processed();
  return n;
}

std::uint64_t Engine::event_digest() const noexcept {
  std::uint64_t h = 0;
  for (const auto& l : lanes_) {
    h ^= l->digest() + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace sym::sim
