#include "simkit/engine.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace sym::sim {

// ---------------------------------------------------------------------------
// Slot table
// ---------------------------------------------------------------------------

std::uint32_t Engine::acquire_slot() {
  std::uint32_t idx;
  if (free_head_ != kNoFreeSlot) {
    idx = free_head_;
    free_head_ = slots_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[idx];
  s.in_use = true;
  s.cancelled = false;
  return idx;
}

void Engine::release_slot(std::uint32_t idx) noexcept {
  Slot& s = slots_[idx];
  s.cb = nullptr;
  s.in_use = false;
  s.cancelled = false;
  ++s.generation;  // invalidate every outstanding id for this slot
  s.next_free = free_head_;
  free_head_ = idx;
}

// ---------------------------------------------------------------------------
// 4-ary heap
// ---------------------------------------------------------------------------

void Engine::heap_push(HeapEntry e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Engine::HeapEntry Engine::heap_pop() {
  assert(!heap_.empty());
  const HeapEntry top = heap_[0];
  heap_[0] = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return top;
}

void Engine::drop_cancelled_top() {
  while (!heap_.empty() && slots_[heap_[0].slot].cancelled) {
    release_slot(heap_pop().slot);
  }
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

Engine::EventId Engine::at(TimeNs t, Callback cb) {
  assert(cb && "scheduling an empty callback");
  if (t < now_) t = now_;  // no scheduling into the past
  const std::uint32_t idx = acquire_slot();
  slots_[idx].cb = std::move(cb);
  heap_push(HeapEntry{t, next_seq_++, idx});
  ++pending_;
  return (static_cast<EventId>(slots_[idx].generation) << 32) | idx;
}

bool Engine::cancel(EventId id) {
  const auto idx = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= slots_.size()) return false;
  Slot& s = slots_[idx];
  // A fired or re-used slot fails the generation check: cancelling a stale
  // id is a no-op, with no tombstone left behind. The heap entry stays in
  // place and is dropped with a flag test when it surfaces.
  if (!s.in_use || s.generation != gen || s.cancelled) return false;
  s.cancelled = true;
  s.cb = nullptr;  // free captured state eagerly
  --pending_;
  return true;
}

bool Engine::pop_and_run() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_pop();
    Slot& s = slots_[top.slot];
    if (s.cancelled) {
      release_slot(top.slot);
      continue;
    }
    now_ = top.t;
    ++processed_;
    --pending_;
    Callback cb = std::move(s.cb);
    // Release before running: a callback cancelling its own (now stale) id
    // or scheduling new events must see a consistent slot table.
    release_slot(top.slot);
    cb();
    return true;
  }
  return false;
}

bool Engine::step() { return pop_and_run(); }

void Engine::run() {
  while (!stopped_ && pop_and_run()) {
  }
}

void Engine::run_until(TimeNs deadline) {
  while (!stopped_) {
    // Surface the true next live event before testing the deadline.
    drop_cancelled_top();
    if (heap_.empty() || heap_[0].t > deadline) break;
    pop_and_run();
  }
}

}  // namespace sym::sim
