#include "simkit/engine.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "simkit/window.hpp"

namespace sym::sim {

namespace {

/// Expand the engine seed into one seed per lane. Lane 0 receives the seed
/// verbatim so a single-lane engine draws exactly the historical stream;
/// higher lanes get splitmix64-derived independent streams.
std::uint64_t lane_seed(std::uint64_t seed, std::uint32_t lane) {
  if (lane == 0) return seed;
  std::uint64_t state = seed + 0x9E3779B97F4A7C15ULL * lane;
  return splitmix64(state);
}

struct ActiveLaneTls {
  Engine* engine = nullptr;
  Lane* lane = nullptr;
};

// symlint: allow(shared-state-escape) reason=thread_local active-lane cursor; each worker reads and writes only its own copy inside ActiveLaneScope
thread_local ActiveLaneTls t_active;

/// a + b without wrapping past kTimeNever (which means "unbounded").
inline TimeNs sat_add(TimeNs a, DurationNs b) noexcept {
  return a > kTimeNever - b ? kTimeNever : a + b;
}

/// a * f saturating at kTimeNever.
inline TimeNs sat_mul(TimeNs a, std::uint64_t f) noexcept {
  if (f != 0 && a > kTimeNever / f) return kTimeNever;
  return a * f;
}

}  // namespace

// ---------------------------------------------------------------------------
// NextEventIndex
// ---------------------------------------------------------------------------

void NextEventIndex::resize(std::uint32_t lanes) {
  heap_.clear();
  pos_.assign(lanes, kAbsent);
  time_.assign(lanes, kTimeNever);
}

void NextEventIndex::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(e, heap_[parent])) break;
    place(i, heap_[parent]);
    i = parent;
  }
  place(i, e);
}

void NextEventIndex::sift_down(std::size_t i) {
  const Entry e = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    place(i, heap_[best]);
    i = best;
  }
  place(i, e);
}

void NextEventIndex::update(std::uint32_t lane, TimeNs t) {
  if (time_[lane] == t) return;
  time_[lane] = t;
  const std::uint32_t at = pos_[lane];
  if (t == kTimeNever) {
    if (at == kAbsent) return;
    // Remove: move the last entry into the hole and restore heap order.
    const Entry last = heap_.back();
    heap_.pop_back();
    pos_[lane] = kAbsent;
    if (last.lane != lane) {
      heap_[at] = last;  // place() via sift below
      pos_[last.lane] = at;
      sift_up(at);
      sift_down(pos_[last.lane]);
    }
    return;
  }
  if (at == kAbsent) {
    heap_.push_back(Entry{t, lane});
    pos_[lane] = static_cast<std::uint32_t>(heap_.size() - 1);
    sift_up(heap_.size() - 1);
    return;
  }
  heap_[at].t = t;
  sift_up(at);
  sift_down(pos_[lane]);
}

// ---------------------------------------------------------------------------
// ActiveLaneScope
// ---------------------------------------------------------------------------

ActiveLaneScope::ActiveLaneScope(Engine& engine, Lane& lane) noexcept
    : prev_engine_(t_active.engine), prev_lane_(t_active.lane) {
  t_active.engine = &engine;
  t_active.lane = &lane;
  debug::set_current_lane(lane.index());
}

ActiveLaneScope::~ActiveLaneScope() {
  t_active.engine = prev_engine_;
  t_active.lane = prev_lane_;
  debug::set_current_lane(prev_lane_ != nullptr ? prev_lane_->index()
                                                : debug::kNoLane);
}

// ---------------------------------------------------------------------------
// Construction / lane topology
// ---------------------------------------------------------------------------

Engine::Engine(std::uint64_t seed, EngineConfig config)
    : seed_(seed), config_(config), lookahead_(config.lookahead) {
  auto_shard_ = (config_.lane_count == 0);
  const std::uint32_t n =
      auto_shard_ ? 1 : std::min(config_.lane_count, kMaxLanes);
  build_lanes(n);
}

void Engine::build_lanes(std::uint32_t count) {
  assert(count >= 1);
  lanes_.clear();
  lanes_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    // symlint: allow(may-allocate) reason=one-time lane construction at
    // engine setup, before any event executes
    lanes_.push_back(std::make_unique<Lane>(i, lane_seed(seed_, i), count));
  }
  const std::uint32_t w = config_.worker_count == 0 ? 1 : config_.worker_count;
  workers_ = std::min(w, count);
  next_index_.resize(count);  // lanes start with next_dirty set
  window_ends_.assign(count, 0);
  la_matrix_.clear();
  la_paths_.clear();
  la_roundtrip_.clear();
}

void Engine::shard_for_nodes(std::uint32_t node_count) {
  if (!auto_shard_ || node_count == 0) return;
  auto_shard_ = false;
  const std::uint32_t n = std::min(node_count, kMaxLanes);
  if (n == lane_count()) return;
  assert(pending_events() == 0 && events_processed() == 0 &&
         "lane topology must be fixed before any event is scheduled");
  build_lanes(n);
}

void Engine::set_lookahead(DurationNs d) noexcept {
  lookahead_ = d > 0 ? d : 1;
}

void Engine::set_lookahead_matrix(std::vector<DurationNs> matrix) {
  const std::size_t n = lanes_.size();
  assert(matrix.size() == n * n && "matrix must be lane_count^2");
  la_matrix_ = std::move(matrix);
  // Scalar floor = off-diagonal minimum: the tightest bound any cross-lane
  // insertion anywhere must respect.
  DurationNs min_la = kTimeNever;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      if (s == d) continue;
      auto& e = la_matrix_[s * n + d];
      if (e == 0) e = 1;  // a zero-delay link would make windows vacuous
      min_la = std::min(min_la, e);
    }
  }
  set_lookahead(min_la == kTimeNever ? 1 : min_la);
  // All-pairs shortest paths over the lookahead graph (Floyd-Warshall;
  // lanes <= 256, one-time cost). A lane with no pending events can still
  // relay causality: src wakes it, it posts onward — so the window bound
  // for dst against a busy src must use the cheapest multi-hop route, not
  // just the direct entry.
  la_paths_ = la_matrix_;
  for (std::size_t i = 0; i < n; ++i) la_paths_[i * n + i] = 0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const DurationNs ik = la_paths_[i * n + k];
      if (ik == kTimeNever) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const TimeNs via = sat_add(ik, la_paths_[k * n + j]);
        if (via < la_paths_[i * n + j]) la_paths_[i * n + j] = via;
      }
    }
  }
  // Minimum round trip i -> j -> i: the earliest a lane's own execution can
  // feed back to itself through any peer (in any number of windows).
  la_roundtrip_.assign(n, kTimeNever);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      la_roundtrip_[i] =
          std::min(la_roundtrip_[i],
                   sat_add(la_paths_[i * n + j], la_paths_[j * n + i]));
    }
  }
}

// ---------------------------------------------------------------------------
// Context-sensitive accessors
// ---------------------------------------------------------------------------

Lane* Engine::active_lane_here() const noexcept {
  return t_active.engine == this ? t_active.lane : nullptr;
}

Lane& Engine::scheduling_lane() noexcept {
  if (Lane* a = active_lane_here()) return *a;
  return *lanes_[0];
}

TimeNs Engine::now() const noexcept {
  if (const Lane* a = active_lane_here()) return a->now();
  if (lanes_.size() == 1) return lanes_[0]->now();
  return main_now_;
}

Rng& Engine::rng() noexcept { return scheduling_lane().rng(); }

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

Engine::EventId Engine::at(TimeNs t, Callback cb) {
  Lane& l = scheduling_lane();
  return make_id(l.index(), l.schedule(t, std::move(cb)));
}

Engine::EventId Engine::at_on(std::uint32_t lane, TimeNs t, Callback cb) {
  assert(lane < lanes_.size());
  Lane* a = active_lane_here();
  if (a != nullptr && a->index() != lane) {
    // Cross-lane insertion from inside a running lane: deterministic
    // mailbox, delivered at the next window barrier. The lookahead
    // guarantees t lands at or beyond the end of the current window.
    a->post_remote(lane, t, std::move(cb));
    return 0;
  }
  return make_id(lane, lanes_[lane]->schedule(t, std::move(cb)));
}

bool Engine::cancel(EventId id) {
  if (id == 0) return false;
  const auto lane = static_cast<std::uint32_t>(id >> 56);
  const auto gen = static_cast<std::uint32_t>((id >> 28) & 0x0FFFFFFFu);
  const auto slot = static_cast<std::uint32_t>(id & 0x0FFFFFFFu);
  if (lane >= lanes_.size()) return false;
#ifndef NDEBUG
  const Lane* a = active_lane_here();
  assert((a == nullptr || a->index() == lane) &&
         "cancel() must target the calling context's own lane");
#endif
  return lanes_[lane]->cancel(slot, gen);
}

// ---------------------------------------------------------------------------
// Execution — classic (single lane)
// ---------------------------------------------------------------------------

void Engine::run_classic() {
  Lane& l = *lanes_[0];
  ActiveLaneScope scope(*this, l);
  while (!stopped() && l.pop_and_run()) {
  }
}

void Engine::run_until_classic(TimeNs deadline) {
  Lane& l = *lanes_[0];
  ActiveLaneScope scope(*this, l);
  while (!stopped()) {
    // Surface the true next live event before testing the deadline.
    TimeNs t;
    if (!l.peek_next(t) || t > deadline) break;
    l.pop_and_run();
  }
}

// ---------------------------------------------------------------------------
// Execution — sharded (safe windows)
// ---------------------------------------------------------------------------

void Engine::refresh_next_index() {
  for (std::uint32_t i = 0; i < lanes_.size(); ++i) {
    Lane& l = *lanes_[i];
    if (!l.take_next_dirty()) continue;
    TimeNs t;
    next_index_.update(i, l.peek_next(t) ? t : kTimeNever);
  }
}

void Engine::compute_window_ends(TimeNs start, bool bounded, TimeNs deadline) {
  const auto n = static_cast<std::uint32_t>(lanes_.size());
  const TimeNs cap = bounded ? sat_add(deadline, 1) : kTimeNever;
  if (!config_.matrix_lookahead) {
    // Legacy lockstep window [start, start + lookahead), optionally
    // stretched by the quiet factor.
    TimeNs end = sat_add(start, sat_mul(lookahead_, quiet_factor_));
    end = std::min(end, cap);
    for (std::uint32_t i = 0; i < n; ++i) window_ends_[i] = end;
    return;
  }
  // Per-lane conservative bound: the earliest timestamp any event executed
  // by a peer this window — or any causal descendant of it, relayed through
  // currently idle lanes across later windows — could carry into this lane.
  // Peers contribute next_j + shortest-path(j, dst); the lane's own next
  // event contributes its minimum round trip. Idle lanes (no entry in the
  // index) generate nothing this window and are covered by the relay paths.
  const auto& active = next_index_.entries();
  for (std::uint32_t dst = 0; dst < n; ++dst) {
    TimeNs bound = kTimeNever;
    for (const auto& e : active) {
      const TimeNs via =
          e.lane == dst
              ? sat_add(e.t, roundtrip_lookahead(dst))
              : sat_add(e.t, path_lookahead(e.lane, dst));
      bound = std::min(bound, via);
    }
    if (quiet_factor_ > 1 && bound != kTimeNever && bound > start) {
      // Speculative quiet-window extension: multiply the window length.
      bound = sat_add(start, sat_mul(bound - start, quiet_factor_));
    }
    window_ends_[dst] = std::min(bound, cap);
  }
}

void Engine::run_windows(bool bounded, TimeNs deadline) {
  assert(lookahead_ > 0 &&
         "sharded engine requires a lookahead (set by the Cluster)");
  WindowCoordinator coord(*this, workers_);
  quiet_factor_ = 1;
  while (!stopped()) {
    refresh_next_index();
    if (next_index_.empty()) break;
    // Next window starts at the earliest cached event across all lanes.
    const TimeNs start = next_index_.top_time();
    if (bounded && start > deadline) break;
    main_now_ = start;
    compute_window_ends(start, bounded, deadline);
    if (quiet_factor_ > 1) ++quiet_extended_windows_;
    const std::uint64_t clamps_before = causality_clamps();
    coord.execute_window(window_ends_.data());
    ++windows_executed_;
    merge_pairs_visited_ += coord.last_merge_pairs();
    dirty_pairs_posted_ += coord.last_dirty_pairs();
    // Quiet-window extension state: depends only on simulation state (how
    // much this window's merge clamped), never on wall time.
    const std::uint64_t clamp_delta = causality_clamps() - clamps_before;
    if (clamp_delta * 2 > coord.last_merge_pairs() ||
        config_.quiet_extension_cap <= 1) {
      quiet_factor_ = std::max(1u, quiet_factor_ - quiet_factor_ / 4);
    } else {
      quiet_factor_ = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          2ULL * quiet_factor_, config_.quiet_extension_cap));
    }
  }
  TimeNs final = main_now_;
  for (auto& l : lanes_) final = std::max(final, l->now());
  main_now_ = final;
}

void Engine::run() {
  if (!parallel()) {
    run_classic();
    return;
  }
  run_windows(/*bounded=*/false, 0);
}

void Engine::run_until(TimeNs deadline) {
  if (!parallel()) {
    run_until_classic(deadline);
    return;
  }
  run_windows(/*bounded=*/true, deadline);
}

bool Engine::step() {
  // Shares the incremental next-event index with run_windows(): only lanes
  // whose heap top may have moved are re-peeked, and the (time, lane)
  // heap order reproduces the historical "earliest event, ties by lane
  // index" selection exactly.
  refresh_next_index();
  if (next_index_.empty()) return false;
  Lane* best = lanes_[next_index_.top_lane()].get();
  {
    ActiveLaneScope scope(*this, *best);
    best->pop_and_run();
  }
  if (parallel()) {
    // Deliver any cross-lane insertions immediately: step() is sequential,
    // so the mailbox discipline is not needed for determinism. Only the
    // destinations the event actually posted to are touched.
    for (const std::uint32_t dst : best->dirty_outboxes()) {
      lanes_[dst]->absorb_outbox_from(*best);
    }
    best->clear_dirty_outboxes();
    main_now_ = std::max(main_now_, best->now());
  }
  return true;
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

std::size_t Engine::pending_events() const noexcept {
  std::size_t n = 0;
  for (const auto& l : lanes_) n += l->pending();
  return n;
}

std::uint64_t Engine::events_processed() const noexcept {
  std::uint64_t n = 0;
  for (const auto& l : lanes_) n += l->processed();
  return n;
}

std::uint64_t Engine::causality_clamps() const noexcept {
  std::uint64_t n = 0;
  for (const auto& l : lanes_) n += l->causality_clamps();
  return n;
}

std::uint64_t Engine::event_digest() const noexcept {
  std::uint64_t h = 0;
  for (const auto& l : lanes_) {
    h ^= l->digest() + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

ArenaStats Engine::arena_stats() const noexcept {
  ArenaStats total;
  for (const auto& l : lanes_) total += l->arena_stats();
  return total;
}

std::uint64_t Engine::arena_slot_count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& l : lanes_) n += l->arena_slot_count();
  return n;
}

void Engine::reserve_events_per_lane(std::uint32_t n) {
  for (auto& l : lanes_) l->reserve_events(n);
}

void Engine::reserve_events_on(std::uint32_t lane, std::uint32_t n) {
  lanes_[lane]->reserve_events(n);
}

std::uint64_t Engine::arena_slot_count(std::uint32_t lane) const noexcept {
  return lanes_[lane]->arena_slot_count();
}

std::vector<std::uint32_t> Engine::outbox_highwater() const {
  const std::uint32_t n = lane_count();
  std::vector<std::uint32_t> m(static_cast<std::size_t>(n) * n, 0);
  for (std::uint32_t src = 0; src < n; ++src) {
    for (std::uint32_t dst = 0; dst < n; ++dst) {
      m[static_cast<std::size_t>(src) * n + dst] =
          lanes_[src]->outbox_highwater(dst);
    }
  }
  return m;
}

void Engine::reserve_outboxes(const std::vector<std::uint32_t>& matrix) {
  const std::uint32_t n = lane_count();
  assert(matrix.size() == static_cast<std::size_t>(n) * n);
  for (std::uint32_t src = 0; src < n; ++src) {
    for (std::uint32_t dst = 0; dst < n; ++dst) {
      const std::uint32_t cap = matrix[static_cast<std::size_t>(src) * n + dst];
      if (cap != 0) lanes_[src]->reserve_outbox(dst, cap);
    }
  }
}

}  // namespace sym::sim
