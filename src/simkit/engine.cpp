#include "simkit/engine.hpp"

#include <cassert>
#include <utility>

namespace sym::sim {

Engine::EventId Engine::at(TimeNs t, Callback cb) {
  assert(cb && "scheduling an empty callback");
  if (t < now_) t = now_;  // no scheduling into the past
  const EventId id = next_id_++;
  heap_.push(Ev{t, id, std::move(cb)});
  return id;
}

bool Engine::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Lazy cancellation: the heap entry stays in place and is skipped when it
  // surfaces. This keeps cancel() O(1) at the cost of a set lookup per pop.
  const bool inserted = cancelled_.insert(id).second;
  if (inserted) ++cancelled_live_;
  return inserted;
}

bool Engine::pop_and_run() {
  while (!heap_.empty()) {
    Ev ev = std::move(const_cast<Ev&>(heap_.top()));
    heap_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      --cancelled_live_;
      continue;
    }
    now_ = ev.t;
    ++processed_;
    ev.cb();
    return true;
  }
  return false;
}

bool Engine::step() { return pop_and_run(); }

void Engine::run() {
  while (!stopped_ && pop_and_run()) {
  }
}

void Engine::run_until(TimeNs deadline) {
  while (!stopped_ && !heap_.empty()) {
    // Skip over cancelled entries to find the true next event time.
    while (!heap_.empty() && cancelled_.count(heap_.top().id) != 0) {
      cancelled_.erase(heap_.top().id);
      --cancelled_live_;
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().t > deadline) break;
    pop_and_run();
  }
}

}  // namespace sym::sim
