#include "simkit/lane.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace sym::sim {

Lane::Lane(std::uint32_t index, std::uint64_t seed, std::uint32_t lane_count)
    : index_(index), rng_(seed), outbox_(lane_count) {
  debug::bind_home_lane(this, index_);
}

Lane::~Lane() { debug::unbind_home_lane(this); }

// ---------------------------------------------------------------------------
// Slot table
// ---------------------------------------------------------------------------

std::uint32_t Lane::acquire_slot() {
  std::uint32_t idx;
  if (free_head_ != kNoFreeSlot) {
    idx = free_head_;
    free_head_ = slots_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[idx];
  s.in_use = true;
  s.cancelled = false;
  return idx;
}

void Lane::release_slot(std::uint32_t idx) noexcept {
  Slot& s = slots_[idx];
  s.cb = nullptr;
  s.in_use = false;
  s.cancelled = false;
  ++s.generation;  // invalidate every outstanding id for this slot
  s.next_free = free_head_;
  free_head_ = idx;
}

// ---------------------------------------------------------------------------
// 4-ary heap
// ---------------------------------------------------------------------------

void Lane::heap_push(HeapEntry e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Lane::HeapEntry Lane::heap_pop() {
  assert(!heap_.empty());
  const HeapEntry top = heap_[0];
  heap_[0] = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return top;
}

void Lane::drop_cancelled_top() {
  while (!heap_.empty() && slots_[heap_[0].slot].cancelled) {
    release_slot(heap_pop().slot);
  }
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

std::uint64_t Lane::schedule(TimeNs t, Callback cb) {
  assert(cb && "scheduling an empty callback");
  // The slot table and heap are lane-owned: inserting from a foreign
  // worker's lane is exactly the cross-lane bug at_on's mailbox prevents.
  debug::assert_home_lane(this, "Lane::schedule");
  if (t < now_) t = now_;  // no scheduling into the past
  const std::uint32_t idx = acquire_slot();
  slots_[idx].cb = std::move(cb);
  heap_push(HeapEntry{t, next_seq_++, idx});
  ++pending_;
  next_dirty_ = true;
  return (static_cast<std::uint64_t>(slots_[idx].generation & 0x0FFFFFFFu)
          << 28) |
         idx;
}

bool Lane::cancel(std::uint32_t slot, std::uint32_t generation) {
  debug::assert_home_lane(this, "Lane::cancel");
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  // A fired or re-used slot fails the generation check: cancelling a stale
  // id is a no-op, with no tombstone left behind. The heap entry stays in
  // place and is dropped with a flag test when it surfaces.
  if (!s.in_use || (s.generation & 0x0FFFFFFFu) != generation || s.cancelled) {
    return false;
  }
  s.cancelled = true;
  s.cb = nullptr;  // free captured state eagerly
  --pending_;
  next_dirty_ = true;
  return true;
}

void Lane::post_remote(std::uint32_t dst, TimeNs t, Callback cb) {
  assert(dst < outbox_.size());
  if (outbox_[dst].empty()) dirty_dst_.push_back(dst);
  outbox_[dst].push_back(RemoteEvent{t, std::move(cb)});
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

bool Lane::pop_and_run() {
  debug::assert_home_lane(this, "Lane::pop_and_run");
  while (!heap_.empty()) {
    const HeapEntry top = heap_pop();
    Slot& s = slots_[top.slot];
    if (s.cancelled) {
      release_slot(top.slot);
      continue;
    }
    now_ = top.t;
    ++processed_;
    --pending_;
    next_dirty_ = true;
#if SYM_DEBUG_CHECKS
    // Fold (timestamp, FIFO seq) of every executed event into the rolling
    // per-lane digest; identical schedules => identical digests.
    const auto mix = [](std::uint64_t h, std::uint64_t v) noexcept {
      h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      return h;
    };
    digest_ = mix(mix(digest_, top.t), top.seq);
#endif
    Callback cb = std::move(s.cb);
    // Release before running: a callback cancelling its own (now stale) id
    // or scheduling new events must see a consistent slot table.
    release_slot(top.slot);
    cb();
    return true;
  }
  return false;
}

std::size_t Lane::run_window(TimeNs end) {
  std::size_t ran = 0;
  while (true) {
    drop_cancelled_top();
    if (heap_.empty() || heap_[0].t >= end) break;
    pop_and_run();
    ++ran;
  }
  return ran;
}

bool Lane::peek_next(TimeNs& t) {
  drop_cancelled_top();
  if (heap_.empty()) return false;
  t = heap_[0].t;
  return true;
}

void Lane::absorb_outbox_from(Lane& src) {
  auto& box = src.outbox_[index_];
  for (auto& ev : box) {
    // A merged event below this lane's clock means a speculative window
    // extension lost its bet: schedule() clamps it to now(), which is
    // deterministic (merge times depend only on simulation state) but
    // perturbs the modeled delivery time — count it so benches can report.
    if (ev.t < now_) ++causality_clamps_;
    schedule(ev.t, std::move(ev.cb));
  }
  box.clear();
}

}  // namespace sym::sim
