#include "simkit/lane.hpp"

#include <cassert>
#include <utility>

namespace sym::sim {

Lane::Lane(std::uint32_t index, std::uint64_t seed, std::uint32_t lane_count)
    : index_(index),
      rng_(seed),
      outbox_(lane_count),
      outbox_hw_(lane_count, 0) {
  debug::bind_home_lane(this, index_);
}

Lane::~Lane() { debug::unbind_home_lane(this); }

void Lane::reserve_events(std::uint32_t n) {
  arena_.reserve(n);
  heap_.reserve(n);
  dirty_dst_.reserve(outbox_.size());
}

void Lane::reserve_outbox(std::uint32_t dst, std::uint32_t n) {
  assert(dst < outbox_.size());
  outbox_[dst].reserve(n);
}

// ---------------------------------------------------------------------------
// d-ary heap (fanout = kHeapFanout, see dheap.hpp)
// ---------------------------------------------------------------------------

void Lane::heap_push(HeapEntry e) {
  if (heap_.size() == heap_.capacity()) ++arena_.stats.container_growths;
  dheap_push<kHeapFanout>(heap_, e, &Lane::before);
}

Lane::HeapEntry Lane::heap_pop() {
  assert(!heap_.empty());
  return dheap_pop<kHeapFanout>(heap_, &Lane::before);
}

void Lane::drop_cancelled_top() {
  while (!heap_.empty() &&
         (arena_.hot(heap_[0].slot).flags & LaneArena::kCancelled) != 0) {
    arena_.release(heap_pop().slot);
  }
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

std::uint64_t Lane::schedule(TimeNs t, Callback cb) {
  assert(cb && "scheduling an empty callback");
  // The slot table and heap are lane-owned: inserting from a foreign
  // worker's lane is exactly the cross-lane bug at_on's mailbox prevents.
  debug::assert_home_lane(this, "Lane::schedule");
  if (t < now_) t = now_;  // no scheduling into the past
  if (cb.on_heap()) ++arena_.stats.fn_heap_spills;
  const std::uint32_t idx = arena_.acquire();
  arena_.cb(idx) = std::move(cb);
  heap_push(HeapEntry{t, next_seq_++, idx});
  ++pending_;
  next_dirty_ = true;
  return (static_cast<std::uint64_t>(arena_.hot(idx).generation & 0x0FFFFFFFu)
          << 28) |
         idx;
}

bool Lane::cancel(std::uint32_t slot, std::uint32_t generation) {
  debug::assert_home_lane(this, "Lane::cancel");
  if (slot >= arena_.slot_count()) return false;
  LaneArena::SlotHot& s = arena_.hot(slot);
  // A fired or re-used slot fails the generation check: cancelling a stale
  // id is a no-op, with no tombstone left behind. The heap entry stays in
  // place and is dropped with a flag test when it surfaces.
  if ((s.flags & LaneArena::kInUse) == 0 ||
      (s.generation & 0x0FFFFFFFu) != generation ||
      (s.flags & LaneArena::kCancelled) != 0) {
    return false;
  }
  s.flags |= LaneArena::kCancelled;
  arena_.cb(slot) = nullptr;  // free captured state eagerly
  --pending_;
  next_dirty_ = true;
  return true;
}

void Lane::post_remote(std::uint32_t dst, TimeNs t, Callback cb) {
  assert(dst < outbox_.size());
  // Spills are counted once per event, in schedule(): every remote callback
  // reaches the destination lane's schedule() via absorb_outbox_from().
  auto& box = outbox_[dst];
  if (box.empty()) {
    if (dirty_dst_.size() == dirty_dst_.capacity()) {
      ++arena_.stats.container_growths;
    }
    dirty_dst_.push_back(dst);
  }
  if (box.size() == box.capacity()) ++arena_.stats.container_growths;
  box.push_back(RemoteEvent{t, std::move(cb)});
  if (box.size() > outbox_hw_[dst]) {
    outbox_hw_[dst] = static_cast<std::uint32_t>(box.size());
  }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

bool Lane::pop_and_run() {
  debug::assert_home_lane(this, "Lane::pop_and_run");
  while (!heap_.empty()) {
    const HeapEntry top = heap_pop();
    LaneArena::SlotHot& s = arena_.hot(top.slot);
    if ((s.flags & LaneArena::kCancelled) != 0) {
      arena_.release(top.slot);
      continue;
    }
    now_ = top.t;
    ++processed_;
    --pending_;
    next_dirty_ = true;
#if SYM_DEBUG_CHECKS
    // Fold (timestamp, FIFO seq) of every executed event into the rolling
    // per-lane digest; identical schedules => identical digests.
    const auto mix = [](std::uint64_t h, std::uint64_t v) noexcept {
      h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      return h;
    };
    digest_ = mix(mix(digest_, top.t), top.seq);
#endif
    Callback cb = std::move(arena_.cb(top.slot));
    // Release before running: a callback cancelling its own (now stale) id
    // or scheduling new events must see a consistent slot table.
    arena_.release(top.slot);
    cb();
    return true;
  }
  return false;
}

std::size_t Lane::run_window(TimeNs end) {
  std::size_t ran = 0;
  while (true) {
    drop_cancelled_top();
    if (heap_.empty() || heap_[0].t >= end) break;
    pop_and_run();
    ++ran;
  }
  return ran;
}

bool Lane::peek_next(TimeNs& t) {
  drop_cancelled_top();
  if (heap_.empty()) return false;
  t = heap_[0].t;
  return true;
}

void Lane::absorb_outbox_from(Lane& src) {
  auto& box = src.outbox_[index_];
  for (auto& ev : box) {
    // A merged event below this lane's clock means a speculative window
    // extension lost its bet: schedule() clamps it to now(), which is
    // deterministic (merge times depend only on simulation state) but
    // perturbs the modeled delivery time — count it so benches can report.
    if (ev.t < now_) ++causality_clamps_;
    schedule(ev.t, std::move(ev.cb));
  }
  box.clear();
}

}  // namespace sym::sim
