// simkit/time.hpp
//
// Virtual time representation for the SYMBIOSYS simulated cluster.
// All simulated timestamps and durations are expressed in nanoseconds of
// virtual time as unsigned 64-bit integers. 2^64 ns is roughly 584 years,
// which comfortably exceeds any simulated experiment horizon.
#pragma once

#include <cstdint>

namespace sym::sim {

/// A point in virtual time, in nanoseconds since simulation start.
using TimeNs = std::uint64_t;

/// A span of virtual time, in nanoseconds.
using DurationNs = std::uint64_t;

/// Sentinel for "no event" / "unbounded": the far end of virtual time.
/// Arithmetic near it must saturate rather than wrap.
constexpr TimeNs kTimeNever = ~TimeNs{0};

/// Convenience constructors for durations. These are plain constexpr
/// functions (not user-defined literals) so call sites read naturally in
/// configuration tables: `usec(15)`, `msec(2)`.
constexpr DurationNs nsec(std::uint64_t n) noexcept { return n; }
constexpr DurationNs usec(std::uint64_t n) noexcept { return n * 1'000ULL; }
constexpr DurationNs msec(std::uint64_t n) noexcept { return n * 1'000'000ULL; }
constexpr DurationNs sec(std::uint64_t n) noexcept { return n * 1'000'000'000ULL; }

/// Convert a virtual duration to floating-point seconds (for reports).
constexpr double to_seconds(DurationNs d) noexcept {
  return static_cast<double>(d) / 1e9;
}

/// Convert a virtual duration to floating-point microseconds (for reports).
constexpr double to_micros(DurationNs d) noexcept {
  return static_cast<double>(d) / 1e3;
}

/// Convert a virtual duration to floating-point milliseconds (for reports).
constexpr double to_millis(DurationNs d) noexcept {
  return static_cast<double>(d) / 1e6;
}

}  // namespace sym::sim
