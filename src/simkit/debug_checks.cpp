#include "simkit/debug_checks.hpp"

#if SYM_DEBUG_CHECKS

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace sym::sim::debug {
namespace {

// The registry is touched from lane worker threads concurrently; this is
// real-thread debug infrastructure (like the window coordinator itself), so
// std::mutex — not abt sync — is correct here, and simkit is outside the
// symlint fiber-blocking scope for exactly this reason.
std::mutex g_mu;
std::unordered_map<const void*, std::uint32_t>& registry() {
  static std::unordered_map<const void*, std::uint32_t> map;
  return map;
}

ViolationHandler& handler_slot() {
  static ViolationHandler handler = [](const Violation& v) {
    std::fprintf(stderr,
                 "SYM_DEBUG_CHECKS: lane-affinity violation at %s: object %p "
                 "owned by lane %u touched from lane %u\n",
                 v.what.c_str(), v.object, v.home_lane, v.actual_lane);
    std::abort();
  };
  return handler;
}

// symlint: allow(shared-state-escape) reason=atomic diagnostics counter read only by tests after the run; never feeds simulation state
std::atomic<std::uint64_t> g_violations{0};

// symlint: allow(shared-state-escape) reason=thread_local shadow of the lane a worker is executing; set by ActiveLaneScope on the owning thread only
thread_local std::uint32_t t_current_lane = kNoLane;

}  // namespace

ViolationHandler set_violation_handler(ViolationHandler handler) {
  const std::lock_guard<std::mutex> lock(g_mu);
  ViolationHandler prev = std::move(handler_slot());
  handler_slot() = std::move(handler);
  return prev;
}

void bind_home_lane(const void* obj, std::uint32_t lane) {
  // symlint: allow(may-block) reason=debug-registry update at object bind
  // time; tiny non-yielding critical section off the steady-state event path
  const std::lock_guard<std::mutex> lock(g_mu);
  registry()[obj] = lane;
}

void unbind_home_lane(const void* obj) {
  const std::lock_guard<std::mutex> lock(g_mu);
  registry().erase(obj);
}

void assert_home_lane(const void* obj, const char* what) {
  const std::uint32_t actual = t_current_lane;
  if (actual == kNoLane) return;  // setup / coordinator context
  Violation v;
  {
    // symlint: allow(may-block) reason=debug-check registry probe; tiny
    // non-yielding critical section guarded by the debug_checks build flag
    const std::lock_guard<std::mutex> lock(g_mu);
    const auto it = registry().find(obj);
    if (it == registry().end() || it->second == actual) return;
    v = Violation{obj, what, it->second, actual};
  }
  g_violations.fetch_add(1, std::memory_order_relaxed);
  ViolationHandler handler;
  {
    const std::lock_guard<std::mutex> lock(g_mu);
    handler = handler_slot();
  }
  handler(v);
}

void set_current_lane(std::uint32_t lane) noexcept { t_current_lane = lane; }

std::uint32_t current_lane() noexcept { return t_current_lane; }

std::uint64_t violation_count() noexcept {
  return g_violations.load(std::memory_order_relaxed);
}

}  // namespace sym::sim::debug

#endif  // SYM_DEBUG_CHECKS
