// simkit/rng.hpp
//
// Deterministic pseudo-random number generation for the simulation.
// We use xoshiro256** seeded through splitmix64. Determinism is a core
// design requirement (see DESIGN.md): every figure in EXPERIMENTS.md must be
// exactly reproducible from a seed, so std::random_device and
// implementation-defined std:: distributions are avoided.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace sym::sim {

/// splitmix64: used to expand a single 64-bit seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic generator with distribution helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDC0DEULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  std::uint64_t uniform(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection-free approximation is fine here;
    // statistical bias of 2^-64 is irrelevant to the simulation.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Exponentially distributed double with the given mean.
  double exponential(double mean) noexcept {
    double u = uniform01();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Normally distributed double (Box-Muller, one value per call).
  double normal(double mean, double stddev) noexcept {
    double u1 = uniform01();
    double u2 = uniform01();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(6.283185307179586 * u2);
  }

  /// True with probability p.
  bool bernoulli(double p) noexcept { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// 64-bit FNV-1a hash, used for RPC name hashing across the stack.
constexpr std::uint64_t fnv1a64(const char* data, std::size_t len) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<std::uint8_t>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace sym::sim
