// simkit/dheap.hpp
//
// d-ary heap primitives shared by the Lane event heap and the engine's
// NextEventIndex. The fanout is a measured compile-time knob: configure with
// -DSYM_HEAP_FANOUT=2|4|8 (CMake cache variable of the same name; default
// 4). A wider heap is shallower (log_d n levels, fewer cache lines touched
// per sift-up) but compares more children per level on sift-down; the
// BM_HeapFanout micro benchmark instantiates all three arities side by side
// so the default is a measurement, not folklore — see EXPERIMENTS.md.
//
// The sifts are hole-based (shift the displaced entry along the path and
// store it once) rather than swap-based: for the 24-byte Lane::HeapEntry
// that halves the stores per level. Both variants place elements at the
// same positions, so the executed event order — and with it every
// determinism digest — is unchanged.
#pragma once

#include <cstddef>
#include <vector>

#ifndef SYM_HEAP_FANOUT
#define SYM_HEAP_FANOUT 4
#endif

namespace sym::sim {

inline constexpr unsigned kHeapFanout = SYM_HEAP_FANOUT;
static_assert(kHeapFanout == 2 || kHeapFanout == 4 || kHeapFanout == 8,
              "SYM_HEAP_FANOUT must be 2, 4 or 8");

/// Append `e` and restore the heap property. `before(a, b)` is the strict
/// ordering (min element at index 0).
template <unsigned Arity, typename T, typename Before>
void dheap_push(std::vector<T>& h, T e, Before before) {
  h.push_back(e);  // placeholder; overwritten by the hole shift below
  std::size_t i = h.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / Arity;
    if (!before(e, h[parent])) break;
    h[i] = h[parent];
    i = parent;
  }
  h[i] = e;
}

/// Remove and return the minimum (caller guarantees non-empty).
template <unsigned Arity, typename T, typename Before>
T dheap_pop(std::vector<T>& h, Before before) {
  T top = h.front();
  const T last = h.back();
  h.pop_back();
  const std::size_t n = h.size();
  if (n == 0) return top;
  std::size_t i = 0;
  while (true) {
    const std::size_t first_child = Arity * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child =
        first_child + Arity < n ? first_child + Arity : n;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(h[c], h[best])) best = c;
    }
    if (!before(h[best], last)) break;
    h[i] = h[best];
    i = best;
  }
  h[i] = last;
  return top;
}

}  // namespace sym::sim
