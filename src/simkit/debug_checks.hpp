// simkit/debug_checks.hpp
//
// Runtime half of the project's determinism tooling (the static half is
// tools/symlint, see docs/STATIC_ANALYSIS.md). Compiled to no-ops unless
// the tree is configured with -DSYM_DEBUG_CHECKS=ON.
//
// Shadow-ownership tracking: lane-owned objects (each Lane's slot table and
// Rng, per-node NIC state, per-endpoint completion queues) register their
// home lane here; every touch then asserts that the calling thread is
// either executing that lane (ActiveLaneScope) or is the coordinating /
// setup thread with no lane active. A cross-lane touch — the bug class the
// safe-window protocol exists to prevent — fails loudly through the
// violation handler instead of silently skewing figures.
//
// The default handler prints the violation and aborts; tests install a
// recording handler to assert that planted violations are caught.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace sym::sim::debug {

/// Sentinel: the calling thread is not executing any lane (main/setup
/// context or the window coordinator between windows).
inline constexpr std::uint32_t kNoLane = 0xFFFFFFFFu;

#if SYM_DEBUG_CHECKS

struct Violation {
  const void* object;      ///< the lane-owned object that was touched
  std::string what;        ///< site description, e.g. "Lane::schedule"
  std::uint32_t home_lane;
  std::uint32_t actual_lane;
};

using ViolationHandler = std::function<void(const Violation&)>;

/// Replace the violation handler (default: print + abort). Returns the
/// previous handler so tests can restore it.
ViolationHandler set_violation_handler(ViolationHandler handler);

/// Register `obj` as owned by `lane`. Re-binding an address overwrites.
void bind_home_lane(const void* obj, std::uint32_t lane);

/// Remove `obj` from the registry (call from destructors: addresses are
/// recycled and a stale binding would poison the next object there).
void unbind_home_lane(const void* obj);

/// Assert that the calling thread may touch `obj`: it is executing the
/// object's home lane, or no lane at all. Unregistered objects pass.
void assert_home_lane(const void* obj, const char* what);

/// Thread-local lane marker, maintained by ActiveLaneScope.
void set_current_lane(std::uint32_t lane) noexcept;
[[nodiscard]] std::uint32_t current_lane() noexcept;

/// Count of violations reported since process start (any handler).
[[nodiscard]] std::uint64_t violation_count() noexcept;

#else  // !SYM_DEBUG_CHECKS — every hook compiles away.

inline void bind_home_lane(const void*, std::uint32_t) {}
inline void unbind_home_lane(const void*) {}
inline void assert_home_lane(const void*, const char*) {}
inline void set_current_lane(std::uint32_t) noexcept {}
inline std::uint32_t current_lane() noexcept { return kNoLane; }
inline std::uint64_t violation_count() noexcept { return 0; }

#endif

}  // namespace sym::sim::debug
