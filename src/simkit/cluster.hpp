// simkit/cluster.hpp
//
// The simulated hardware platform: nodes with clock skew and NICs, and
// processes with an OS-level resource model (RSS, CPU accounting).
//
// This substitutes for the paper's Theta (Cray XC40) testbed; see DESIGN.md.
// The parameters below default to values representative of an HPC
// interconnect (low single-digit microsecond latency, ~10 GB/s per NIC).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "simkit/engine.hpp"
#include "simkit/time.hpp"

namespace sym::sim {

using NodeId = std::uint32_t;
using ProcessId = std::uint32_t;

/// Symmetric override of the one-way latency between one node pair.
/// Overrides let experiments plant heterogeneous topologies (a far burst
/// buffer, a slow WAN hop); the Cluster folds them into the engine's
/// per-lane-pair lookahead matrix so distant lane pairs earn wider safe
/// windows instead of being throttled by the global minimum latency.
struct LinkOverride {
  NodeId a = 0;
  NodeId b = 0;
  DurationNs latency = 0;
};

struct ClusterParams {
  std::uint32_t node_count = 1;
  /// One-way network latency between distinct nodes.
  DurationNs inter_node_latency = usec(2);
  /// Latency of loopback / shared-memory transport within one node.
  DurationNs intra_node_latency = nsec(300);
  /// NIC bandwidth in bytes per nanosecond (10 => 10 GB/s).
  double nic_bw_bytes_per_ns = 10.0;
  /// Memory bandwidth used for intra-node transfers (bytes per ns).
  double mem_bw_bytes_per_ns = 40.0;
  /// Maximum absolute per-node wall-clock skew. Node 0 has zero skew;
  /// other nodes draw a fixed offset uniformly from [-max, +max]. The skew
  /// is what makes Lamport-clock correction in the tracer observable.
  DurationNs max_clock_skew = usec(50);
  /// Per-pair latency overrides (symmetric; unlisted pairs use the
  /// intra/inter defaults). Order does not matter; duplicate pairs keep the
  /// smallest latency (the conservative choice for lookahead).
  std::vector<LinkOverride> link_overrides = {};
};

/// A compute node: clock skew and a NIC whose serialization models
/// bandwidth contention between concurrent transfers.
class Node {
 public:
  Node(NodeId id, std::int64_t clock_skew_ns)
      : id_(id), clock_skew_ns_(clock_skew_ns) {}

  [[nodiscard]] NodeId id() const noexcept { return id_; }

  /// Signed offset of this node's local clock from global virtual time.
  [[nodiscard]] std::int64_t clock_skew_ns() const noexcept {
    return clock_skew_ns_;
  }

  /// Convert a global virtual timestamp to this node's local wall clock.
  [[nodiscard]] TimeNs local_clock(TimeNs global) const noexcept {
    const auto shifted = static_cast<std::int64_t>(global) + clock_skew_ns_;
    return shifted < 0 ? 0 : static_cast<TimeNs>(shifted);
  }

  /// Reserve the NIC for a transfer of `bytes` at bandwidth `bw` starting no
  /// earlier than `now`. Returns the time the transfer *completes* on this
  /// NIC. Transfers serialize: a second transfer starts when the first ends.
  TimeNs reserve_nic(TimeNs now, std::uint64_t bytes, double bw_bytes_per_ns);

  [[nodiscard]] std::uint64_t nic_bytes_total() const noexcept {
    return nic_bytes_total_;
  }

 private:
  NodeId id_;
  std::int64_t clock_skew_ns_;
  TimeNs nic_busy_until_ = 0;
  std::uint64_t nic_bytes_total_ = 0;
};

/// A simulated OS process placed on a node. Holds coarse OS-level metrics
/// that SYMBIOSYS samples into trace events (memory usage, CPU time).
class Process {
 public:
  Process(ProcessId pid, NodeId node, std::string name)
      : pid_(pid), node_(node), name_(std::move(name)) {}

  [[nodiscard]] ProcessId pid() const noexcept { return pid_; }
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Resident set size model: services account their allocations here.
  void add_rss(std::int64_t delta) noexcept {
    rss_bytes_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(rss_bytes_) + delta);
  }
  [[nodiscard]] std::uint64_t rss_bytes() const noexcept { return rss_bytes_; }

  /// CPU accounting: execution streams report busy virtual time here.
  void add_cpu_time(DurationNs d) noexcept { cpu_time_ += d; }
  [[nodiscard]] DurationNs cpu_time() const noexcept { return cpu_time_; }

  /// Utilization over [since, now] given the number of cores the process
  /// had available (its execution-stream count).
  [[nodiscard]] double cpu_utilization(TimeNs since, TimeNs now,
                                       unsigned cores) const noexcept;

  /// Snapshot used by utilization computations.
  void checkpoint_cpu(TimeNs now) noexcept {
    cpu_checkpoint_time_ = now;
    cpu_checkpoint_value_ = cpu_time_;
  }
  [[nodiscard]] TimeNs cpu_checkpoint_time() const noexcept {
    return cpu_checkpoint_time_;
  }
  [[nodiscard]] DurationNs cpu_checkpoint_value() const noexcept {
    return cpu_checkpoint_value_;
  }

 private:
  ProcessId pid_;
  NodeId node_;
  std::string name_;
  std::uint64_t rss_bytes_ = 8ULL << 20;  // baseline process image
  DurationNs cpu_time_ = 0;
  TimeNs cpu_checkpoint_time_ = 0;
  DurationNs cpu_checkpoint_value_ = 0;
};

/// The simulated platform: an engine plus nodes and processes.
class Cluster {
 public:
  Cluster(Engine& engine, ClusterParams params);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] Engine& engine() noexcept { return engine_; }
  [[nodiscard]] const ClusterParams& params() const noexcept { return params_; }

  [[nodiscard]] Node& node(NodeId id) { return nodes_.at(id); }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

  /// Create a process on `node` with a human-readable name.
  Process& spawn_process(NodeId node, std::string name);

  [[nodiscard]] Process& process(ProcessId pid) { return *processes_.at(pid); }
  [[nodiscard]] std::size_t process_count() const noexcept {
    return processes_.size();
  }

  /// Link latency between two nodes: a matching override if one exists,
  /// else the intra/inter node default.
  [[nodiscard]] DurationNs link_latency(NodeId a, NodeId b) const noexcept {
    if (!override_index_.empty()) {
      if (const DurationNs* o = find_override(a, b)) return *o;
    }
    return a == b ? params_.intra_node_latency : params_.inter_node_latency;
  }

  /// Effective point-to-point bandwidth between two nodes.
  [[nodiscard]] double link_bandwidth(NodeId a, NodeId b) const noexcept {
    return a == b ? params_.mem_bw_bytes_per_ns : params_.nic_bw_bytes_per_ns;
  }

 private:
  /// Binary search of the sorted override index; nullptr when the pair has
  /// no override.
  [[nodiscard]] const DurationNs* find_override(NodeId a,
                                                NodeId b) const noexcept;
  /// Derive the per-lane-pair lookahead matrix from link topology and
  /// install it on the engine (sharded engines without a pinned scalar).
  void install_lookahead_matrix();

  Engine& engine_;
  ClusterParams params_;
  std::vector<Node> nodes_;
  std::vector<std::unique_ptr<Process>> processes_;
  /// (min(a,b) << 32 | max(a,b)) -> latency, sorted by key.
  std::vector<std::pair<std::uint64_t, DurationNs>> override_index_;
};

}  // namespace sym::sim
