// simkit/smallfn.hpp
//
// SmallFn — the event-callback representation of the lane hot path. A
// std::function<void()> built from a capturing lambda heap-allocates as soon
// as the capture outgrows the library's small-object buffer (two pointers on
// libstdc++), which on the post/deliver/merge path means one malloc and one
// free per simulated event. SmallFn replaces it with a move-only callable
// whose inline buffer (kInlineBytes) is sized for the engine's real
// callbacks: a capture of `this` plus a handful of ids/timestamps stays
// inline, so a steady-state event loop performs zero allocator traffic.
//
// Oversized or throwing-move captures spill to the heap; the spill is a
// correctness-preserving slow path that Lane counts into its ArenaStats
// (fn_heap_spills) so the allocations-per-event bench column and the
// bench_scale_smoke gate keep the no-spill invariant observable.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sym::sim {

namespace smallfn_detail {

struct VTable {
  void (*invoke)(void*);
  void (*destroy)(void*) noexcept;
  /// Move-construct the callable into `dst` storage and destroy `src`.
  void (*relocate)(void* src, void* dst) noexcept;
  bool heap;
};

template <typename Fn>
struct InlineOps {
  static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
  static void destroy(void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }
  static void relocate(void* src, void* dst) noexcept {
    Fn* s = static_cast<Fn*>(src);
    ::new (dst) Fn(std::move(*s));
    s->~Fn();
  }
};

template <typename Fn>
struct HeapOps {
  static Fn*& slot(void* p) noexcept { return *static_cast<Fn**>(p); }
  static void invoke(void* p) { (*slot(p))(); }
  static void destroy(void* p) noexcept { delete slot(p); }
  static void relocate(void* src, void* dst) noexcept {
    ::new (dst) Fn*(slot(src));
  }
};

template <typename Fn>
inline constexpr VTable kInlineVt{&InlineOps<Fn>::invoke,
                                  &InlineOps<Fn>::destroy,
                                  &InlineOps<Fn>::relocate, false};

template <typename Fn>
inline constexpr VTable kHeapVt{&HeapOps<Fn>::invoke, &HeapOps<Fn>::destroy,
                                &HeapOps<Fn>::relocate, true};

}  // namespace smallfn_detail

class SmallFn {
 public:
  /// Inline capture budget. 96 bytes holds the fattest hot-path callback in
  /// the tree — sofi's receive-delivery lambda, which move-captures the
  /// payload vector, an attachment shared_ptr and five ids — with room for
  /// `this` plus ten 64-bit ids/timestamps in the common case. Every
  /// callback the engine, sofi, argolite and the services schedule today
  /// stays inline (asserted by the arena bench gate).
  static constexpr std::size_t kInlineBytes = 96;

  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &smallfn_detail::kInlineVt<Fn>;
    } else {
      // Spill path for captures beyond the inline budget. The scheduling
      // lane counts every spill into ArenaStats::fn_heap_spills, and the
      // B2 may-allocate lint keeps this the only sanctioned `new` here.
      // symlint: allow(may-allocate) reason=counted slow-path spill for oversized captures; steady-state gate asserts it never fires
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &smallfn_detail::kHeapVt<Fn>;
    }
  }

  SmallFn(SmallFn&& o) noexcept { move_from(o); }
  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  SmallFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  /// True when the callable's capture spilled past the inline buffer.
  [[nodiscard]] bool on_heap() const noexcept {
    return vt_ != nullptr && vt_->heap;
  }

  void operator()() { vt_->invoke(buf_); }

 private:
  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }
  void move_from(SmallFn& o) noexcept {
    vt_ = o.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(o.buf_, buf_);
      o.vt_ = nullptr;
    }
  }

  const smallfn_detail::VTable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace sym::sim
