// simkit/window.hpp
//
// Worker pool and barrier protocol for the sharded engine's conservative
// safe-window execution. One coordinator (the thread that called
// Engine::run) decides per-lane window boundaries; `worker_count` threads
// execute the lanes of each window concurrently, each walking its slice of
// a persistent lane->worker assignment. The assignment starts as the
// static stride (lane i on worker i % worker_count) and is rebalanced
// between windows from per-lane executed-event counts (LPT greedy), so a
// few hot lanes stop serializing a window behind one worker. Rebalancing
// moves fibers between OS threads; fiber.cpp explicitly supports resuming
// a fiber on a different thread than suspended it (the sanitizer context
// is re-fetched on every entry). The coordinator then merges the
// cross-lane mailboxes single-threaded, walking only the (dst, src) pairs
// registered dirty by an actual post, in canonical (dst, src, append)
// order — the same relative order the historical dense lanes^2 sweep gave
// the nonempty pairs, so the post-window schedule is independent of both
// execution timing and the assignment. With worker_count == 1 no threads
// are spawned and the coordinator runs the lanes itself in lane order —
// producing bit-identical results, just without overlap.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "simkit/time.hpp"

namespace sym::sim {

class Engine;

/// Sense-reversing phase barrier tuned for the window handoff. std::barrier
/// spins aggressively before parking, which is the right call when every
/// participant has its own core — and exactly wrong when the pool is
/// oversubscribed (workers + coordinator > host CPUs): each barrier crossing
/// then burns a scheduling quantum spinning while the thread that could
/// release the barrier waits for the CPU. That is the 16-lane regression in
/// BENCH_scaling.json (workers>1 ~1.7x slower than 1 worker on the 1-vCPU
/// builder). HandoffBarrier sizes its spin budget from host parallelism:
/// bounded spin when participants fit the machine, immediate yield when they
/// don't, so an oversubscribed pool degrades to cooperative scheduling
/// instead of quantum-long spin waits.
class HandoffBarrier {
 public:
  explicit HandoffBarrier(std::uint32_t participants)
      : participants_(participants),
        spin_limit_(participants <= std::thread::hardware_concurrency()
                        ? kSpinBudget
                        : 0) {}

  void arrive_and_wait() noexcept {
    // The phase cannot advance between this load and our arrival below:
    // every participant (including us) must arrive first.
    const std::uint64_t phase = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        participants_) {
      // Last arriver: reset the count, then publish the new phase. Waiters
      // acquire the phase store, so the reset happens-before any re-arrival.
      arrived_.store(0, std::memory_order_relaxed);
      phase_.store(phase + 1, std::memory_order_release);
      return;
    }
    std::uint32_t spins = 0;
    while (phase_.load(std::memory_order_acquire) == phase) {
      // symlint: allow(may-block) reason=bounded spin then cooperative
      // yield; the barrier IS the sanctioned window-handoff wait point
      if (++spins > spin_limit_) std::this_thread::yield();
    }
  }

 private:
  static constexpr std::uint32_t kSpinBudget = 4096;

  std::uint32_t participants_;
  std::uint32_t spin_limit_;
  std::atomic<std::uint64_t> phase_{0};
  std::atomic<std::uint32_t> arrived_{0};
};

class WindowCoordinator {
 public:
  WindowCoordinator(Engine& engine, std::uint32_t workers);
  ~WindowCoordinator();
  WindowCoordinator(const WindowCoordinator&) = delete;
  WindowCoordinator& operator=(const WindowCoordinator&) = delete;

  /// Run every lane up to (exclusive) its entry in `ends` (indexed by lane,
  /// `lane_count` entries, owned by the caller and stable for the duration
  /// of the call), then merge the dirty cross-lane mailboxes and, on
  /// schedule, rebalance the lane->worker assignment. Returns once the
  /// whole window is complete.
  void execute_window(const TimeNs* ends);

  /// (dst, src) mailbox pairs absorbed by the last merge sweep.
  [[nodiscard]] std::uint64_t last_merge_pairs() const noexcept {
    return last_merge_pairs_;
  }
  /// (dst, src) pairs the lanes registered dirty during the last window.
  /// The sweep visits exactly the registered pairs, so this must equal
  /// last_merge_pairs(); the scaling bench gates on the totals staying
  /// equal.
  [[nodiscard]] std::uint64_t last_dirty_pairs() const noexcept {
    return last_dirty_pairs_;
  }

 private:
  void worker_main(std::uint32_t worker);
  /// Execute the lanes currently assigned to `worker`.
  void run_lanes_of(std::uint32_t worker, const TimeNs* ends);
  void merge();
  /// Every config.rebalance_period windows, re-pack lanes onto workers by
  /// descending executed-event delta (LPT greedy, ties by lane index then
  /// worker index). Inputs are simulation state only, so the assignment is
  /// deterministic — and it never affects results, only which thread runs
  /// which (causally independent) lane.
  void maybe_rebalance();

  Engine& engine_;
  std::uint32_t workers_;
  std::atomic<const TimeNs*> window_ends_{nullptr};
  std::atomic<bool> done_{false};
  HandoffBarrier sync_;
  std::vector<std::thread> threads_;

  /// Persistent lane->worker assignment: worker_lanes_[w] holds the lane
  /// indices worker w executes, each list sorted ascending.
  std::vector<std::vector<std::uint32_t>> worker_lanes_;
  std::vector<std::uint64_t> rebalance_baseline_;  ///< processed() snapshot
  std::uint32_t windows_since_rebalance_ = 0;

  /// Merge scratch: (dst, src) pairs collected from the lanes' dirty lists.
  std::vector<std::uint64_t> merge_pairs_;
  std::uint64_t last_merge_pairs_ = 0;
  std::uint64_t last_dirty_pairs_ = 0;
};

}  // namespace sym::sim
