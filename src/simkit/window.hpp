// simkit/window.hpp
//
// Worker pool and barrier protocol for the sharded engine's conservative
// safe-window execution. One coordinator (the thread that called
// Engine::run) decides window boundaries; `worker_count` threads execute
// the lanes of each window concurrently (lane i is pinned to worker
// i % worker_count for the lifetime of the pool, so every fiber resumes on
// the thread that suspended it); the coordinator then merges the cross-lane
// mailboxes single-threaded, in (dst, src, append) order, which makes the
// post-window schedule independent of execution timing. With worker_count
// == 1 no threads are spawned and the coordinator runs the lanes itself in
// lane order — producing bit-identical results, just without overlap.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <thread>
#include <vector>

#include "simkit/time.hpp"

namespace sym::sim {

class Engine;

class WindowCoordinator {
 public:
  WindowCoordinator(Engine& engine, std::uint32_t workers);
  ~WindowCoordinator();
  WindowCoordinator(const WindowCoordinator&) = delete;
  WindowCoordinator& operator=(const WindowCoordinator&) = delete;

  /// Run every lane up to (exclusive) `end`, then merge the cross-lane
  /// mailboxes. Returns once the whole window — execution and merge — is
  /// complete.
  void execute_window(TimeNs end);

 private:
  void worker_main(std::uint32_t worker);
  /// Execute the lanes statically assigned to `worker` for this window.
  void run_lanes_of(std::uint32_t worker, TimeNs end);
  void merge();

  Engine& engine_;
  std::uint32_t workers_;
  std::atomic<TimeNs> window_end_{0};
  std::atomic<bool> done_{false};
  std::barrier<> sync_;
  std::vector<std::thread> threads_;
};

}  // namespace sym::sim
