// simkit/engine.hpp
//
// The discrete-event simulation engine at the heart of the simulated
// cluster. The engine owns a single global virtual clock and an event queue.
// Everything above it (execution streams, the fabric, databases) expresses
// the passage of time by scheduling callbacks.
//
// The engine is strictly single-threaded: events with equal timestamps are
// executed in insertion order (FIFO tie-break via a sequence number), which
// together with the seeded Rng makes entire experiments bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "simkit/rng.hpp"
#include "simkit/time.hpp"

namespace sym::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Opaque handle for cancelling a scheduled event.
  using EventId = std::uint64_t;

  explicit Engine(std::uint64_t seed = 0x5EEDC0DEULL) : rng_(seed) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  [[nodiscard]] TimeNs now() const noexcept { return now_; }

  /// Deterministic RNG shared by all simulation components.
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// Schedule `cb` at absolute virtual time `t` (clamped to now()).
  EventId at(TimeNs t, Callback cb);

  /// Schedule `cb` after `d` nanoseconds of virtual time.
  EventId after(DurationNs d, Callback cb) { return at(now_ + d, std::move(cb)); }

  /// Cancel a previously scheduled event. Safe to call after the event has
  /// fired (it becomes a no-op). Returns true if the event was still pending.
  bool cancel(EventId id);

  /// Run until the event queue drains or stop() is called.
  void run();

  /// Run until virtual time would exceed `deadline` (events at exactly
  /// `deadline` still execute), the queue drains, or stop() is called.
  void run_until(TimeNs deadline);

  /// Execute a single event. Returns false if the queue was empty.
  bool step();

  /// Request that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  /// Clear the stop flag so the engine can be driven again.
  void reset_stop() noexcept { stopped_ = false; }

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return heap_.size() - cancelled_live_;
  }

  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }

 private:
  struct Ev {
    TimeNs t;
    EventId id;
    Callback cb;
  };
  struct EvCmp {
    bool operator()(const Ev& a, const Ev& b) const noexcept {
      // std::priority_queue is a max-heap; invert for earliest-first, with
      // the monotonically increasing id as a FIFO tie-break.
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;
    }
  };

  bool pop_and_run();

  TimeNs now_ = 0;
  bool stopped_ = false;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t cancelled_live_ = 0;
  std::priority_queue<Ev, std::vector<Ev>, EvCmp> heap_;
  std::unordered_set<EventId> cancelled_;
  Rng rng_;
};

}  // namespace sym::sim
