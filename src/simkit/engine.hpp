// simkit/engine.hpp
//
// The discrete-event simulation engine at the heart of the simulated
// cluster. Everything above it (execution streams, the fabric, databases)
// expresses the passage of time by scheduling callbacks.
//
// The engine is a facade over one or more event *lanes* (lane.hpp). In the
// default configuration there is a single lane and the engine behaves
// exactly like the historical strictly single-threaded implementation:
// events with equal timestamps execute in insertion order (FIFO tie-break
// via a sequence number), which together with the seeded Rng makes entire
// experiments bit-reproducible.
//
// With `EngineConfig::lane_count > 1` (or 0 = one lane per simulated node,
// resolved by the Cluster) the event queue is sharded: each lane owns the
// events of the nodes mapped to it (node % lane_count) plus its own clock,
// heap and Rng stream. Lanes advance in conservative *safe windows*: each
// window, every lane executes events below a per-lane bound derived from
// the other lanes' cached next-event times and a per-lane-pair lookahead
// matrix (the minimum cross-node messaging delay between the lanes' node
// sets, installed by the Cluster from actual link topology), so events
// inside one window on different lanes cannot causally interact and may
// execute concurrently on a pool of worker threads (window.hpp).
// Cross-lane insertions travel through per-lane-pair mailboxes merged at
// each window barrier in (dst-lane, src-lane, append) order — only pairs
// that actually posted are visited — and every lane draws from an
// independently seeded Rng, so results are bit-identical for any
// worker_count (see docs/ARCHITECTURE.md for the full determinism
// argument, including why the window schedule itself depends only on
// simulation state).
//
// Every timer in the stack funnels through these queues, so the per-lane
// operations keep the historical constant factors:
//
//  * Events live in a slot table with generation-tagged ids
//    (id = lane << 56 | generation << 28 | slot). cancel() is a direct O(1)
//    slot access — no hash-set insert, and a stale id from a fired event
//    simply fails the generation check instead of poisoning a tombstone set.
//  * The priority queue is an explicit d-ary heap (fanout = SYM_HEAP_FANOUT,
//    default 4, see dheap.hpp): shallower than a binary heap (log_d n
//    levels) and with a node's children on one cache line's worth of
//    entries, which measurably speeds up the sift-down on pop. Cancelled
//    entries are skipped with a flag test when they surface, not a set
//    lookup per pop.
//  * Per-event memory is arena-owned (arena.hpp): slots recycle through an
//    intrusive freelist, callbacks are inline-buffer SmallFn, and
//    Engine::arena_stats() aggregates the per-lane allocation counters the
//    benches divide by executed events.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "simkit/lane.hpp"
#include "simkit/rng.hpp"
#include "simkit/time.hpp"

namespace sym::sim {

/// Parallel-execution knobs. The default (one lane, one worker) is the
/// historical single-threaded engine, bit-for-bit.
struct EngineConfig {
  /// Number of event lanes the queue is sharded into. 1 = classic
  /// single-threaded engine. 0 = auto: one lane per simulated node,
  /// resolved when the Cluster is constructed. The lane count determines
  /// the schedule (and the per-lane Rng streams), so runs with different
  /// lane counts are different experiments; runs with the same lane count
  /// and different worker counts are bit-identical.
  std::uint32_t lane_count = 1;
  /// Worker threads executing lanes during a safe window. Clamped to the
  /// lane count. 1 = run lanes sequentially on the calling thread.
  std::uint32_t worker_count = 1;
  /// Safe-window width floor. 0 = derive from the cluster's link topology
  /// (the Cluster installs a per-lane-pair lookahead matrix; the scalar
  /// becomes the matrix minimum). A pinned nonzero value forces a uniform
  /// lookahead and skips the matrix derivation.
  DurationNs lookahead = 0;
  /// Per-lane window bounds from the lookahead matrix: lane `i` runs to
  /// `min over lanes j with pending events of (next_j + dist(j, i))`
  /// (plus a self round-trip term), where dist is the all-pairs shortest
  /// path over the lookahead matrix. false = legacy lockstep windows
  /// `[start, start + lookahead)` — kept for the scaling ablation.
  bool matrix_lookahead = true;
  /// Adaptive quiet-window extension: every per-lane window length is
  /// multiplied by a factor that doubles (up to this cap) while
  /// speculation pays off and backs off 25% when a window's merge clamps
  /// more events than half its mailbox-pair count. The factor depends
  /// only on simulation state, so runs stay bit-identical for every
  /// worker count. Values <= 1 disable the extension. Extension is
  /// speculative: a lost bet clamps a late merged event to the
  /// destination clock and is counted in Engine::causality_clamps().
  std::uint32_t quiet_extension_cap = 8;
  /// Rebalance the persistent lane->worker assignment every N windows from
  /// per-lane executed-event counts (simulation state, so the assignment —
  /// which never affects results — is itself deterministic). 0 = keep the
  /// static stride assignment (lane i on worker i % worker_count) forever.
  std::uint32_t rebalance_period = 32;
};

/// Incrementally maintained minimum over per-lane cached next-event times:
/// an indexed 4-ary min-heap keyed by (time, lane). Replaces the O(lanes)
/// peek-min sweep (which walked every lane's event heap) that both
/// Engine::step() and the window loop used to duplicate; lanes are
/// re-cached only when their heap top may have moved (Lane::take_next_dirty).
class NextEventIndex {
 public:
  struct Entry {
    TimeNs t;
    std::uint32_t lane;
  };

  void resize(std::uint32_t lanes);
  /// Set lane's cached next-event time; kTimeNever removes it.
  void update(std::uint32_t lane, TimeNs t);
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::uint32_t top_lane() const noexcept {
    return heap_.front().lane;
  }
  [[nodiscard]] TimeNs top_time() const noexcept { return heap_.front().t; }
  [[nodiscard]] TimeNs time_of(std::uint32_t lane) const noexcept {
    return time_[lane];
  }
  /// Lanes currently holding events, in unspecified (heap) order. Callers
  /// must not let the order reach simulation state without first reducing
  /// it through min/sort.
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return heap_;
  }

 private:
  [[nodiscard]] static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.t != b.t) return a.t < b.t;
    return a.lane < b.lane;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void place(std::size_t i, Entry e) {
    heap_[i] = e;
    pos_[e.lane] = static_cast<std::uint32_t>(i);
  }

  static constexpr std::uint32_t kAbsent = 0xFFFFFFFFu;
  std::vector<Entry> heap_;
  std::vector<std::uint32_t> pos_;  ///< lane -> heap slot (kAbsent if none)
  std::vector<TimeNs> time_;        ///< lane -> cached time (kTimeNever)
};

class Engine {
 public:
  using Callback = Lane::Callback;

  /// Opaque handle for cancelling a scheduled event. Encodes a lane, a slot
  /// index and a generation tag; 0 is never a valid id. Events posted to a
  /// *different* lane from inside a running lane travel through a mailbox
  /// and are not cancellable (at_on returns 0 for them).
  using EventId = std::uint64_t;

  explicit Engine(std::uint64_t seed = 0x5EEDC0DEULL, EngineConfig config = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time: the executing lane's clock from inside a lane,
  /// the window start (or final time) from the coordinating thread.
  [[nodiscard]] TimeNs now() const noexcept;

  /// Deterministic RNG. From inside a running lane this is that lane's
  /// stream; from setup/main context it is lane 0's stream (which is seeded
  /// with the engine seed verbatim, so single-lane behavior is unchanged).
  [[nodiscard]] Rng& rng() noexcept;

  /// Schedule `cb` at absolute virtual time `t` (clamped to now()) on the
  /// current lane (the executing lane, or lane 0 from main context).
  EventId at(TimeNs t, Callback cb);

  /// Schedule `cb` after `d` nanoseconds of virtual time on the current lane.
  EventId after(DurationNs d, Callback cb) {
    return at(now() + d, std::move(cb));
  }

  /// Schedule onto a specific lane. From main context, or when `lane` is the
  /// executing lane, this is a direct (cancellable) insertion. From a
  /// different running lane the event is routed through the deterministic
  /// window mailbox and 0 is returned (not cancellable); `t` must then be at
  /// least one lookahead ahead of the current window start.
  EventId at_on(std::uint32_t lane, TimeNs t, Callback cb);
  EventId after_on(std::uint32_t lane, DurationNs d, Callback cb) {
    return at_on(lane, now() + d, std::move(cb));
  }

  /// Cancel a previously scheduled event. Safe to call after the event has
  /// fired (the generation check makes it a no-op). Returns true if the
  /// event was still pending. Must target the calling context's own lane.
  bool cancel(EventId id);

  /// Run until the event queue drains or stop() is called.
  void run();

  /// Run until virtual time would exceed `deadline` (events at exactly
  /// `deadline` still execute), the queue drains, or stop() is called.
  void run_until(TimeNs deadline);

  /// Execute a single event (the globally earliest; ties broken by lane
  /// index). Returns false if all lanes are empty. Sequential — intended
  /// for tests and debugging.
  bool step();

  /// Request that run()/run_until() return. Takes effect after the current
  /// event (single lane) or at the next window barrier (sharded), so the
  /// stopping point is deterministic for any worker count.
  void stop() noexcept { stopped_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool stopped() const noexcept {
    return stopped_.load(std::memory_order_relaxed);
  }

  /// Clear the stop flag so the engine can be driven again.
  void reset_stop() noexcept {
    stopped_.store(false, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t pending_events() const noexcept;
  [[nodiscard]] std::uint64_t events_processed() const noexcept;

  /// Rolling digest of the executed event stream, folded over the lanes in
  /// lane-index order. Two runs with the same lane count must produce the
  /// same digest for every worker_count; only maintained under
  /// -DSYM_DEBUG_CHECKS=ON (0 otherwise). See docs/STATIC_ANALYSIS.md.
  [[nodiscard]] std::uint64_t event_digest() const noexcept;

  /// Event-path allocation counters summed over every lane's arena. The
  /// benches report stats.allocations() / events_processed() as the
  /// allocations-per-event column; steady state must hold it at zero.
  [[nodiscard]] ArenaStats arena_stats() const noexcept;

  /// Total event slots ever created across the lane arenas (live +
  /// freelisted): the high-water mark the recycling tests compare across
  /// identical phases.
  [[nodiscard]] std::uint64_t arena_slot_count() const noexcept;

  /// Pre-size every lane's slot table and event heap for `n` simultaneous
  /// pending events, so a known steady state never grows containers
  /// mid-run. Call before scheduling.
  void reserve_events_per_lane(std::uint32_t n);

  /// Per-lane variant of reserve_events_per_lane (event populations are
  /// rarely uniform: server lanes hold the in-transit deliveries).
  void reserve_events_on(std::uint32_t lane, std::uint32_t n);

  /// Event slots ever created on one lane (its arena high-water mark) —
  /// the capacity-planning input for reserve_events_on.
  [[nodiscard]] std::uint64_t arena_slot_count(std::uint32_t lane) const noexcept;

  /// Row-major lanes^2 matrix of outbox size high-water marks: entry
  /// (src, dst) is the largest batch src ever buffered for dst between two
  /// window merges. A warmup run's matrix, fed back through
  /// reserve_outboxes() on an identical run, removes the last allocation
  /// source on the cross-lane post path.
  [[nodiscard]] std::vector<std::uint32_t> outbox_highwater() const;

  /// Pre-size the (src, dst) outbox buffers from a row-major lanes^2
  /// matrix of capacities (zero entries are skipped).
  void reserve_outboxes(const std::vector<std::uint32_t>& matrix);

#if SYM_DEBUG_CHECKS
  /// Test-only escape hatch: direct access to a Lane, bypassing the at_on
  /// mailbox discipline. Exists so the debug_checks suite can plant a
  /// cross-lane touch and assert the ownership verifier catches it.
  [[nodiscard]] Lane& debug_lane(std::uint32_t lane) { return *lanes_[lane]; }
#endif

  // --- lane topology -------------------------------------------------------

  [[nodiscard]] std::uint32_t lane_count() const noexcept {
    return static_cast<std::uint32_t>(lanes_.size());
  }
  /// True when the event queue is sharded across more than one lane.
  [[nodiscard]] bool parallel() const noexcept { return lanes_.size() > 1; }
  [[nodiscard]] std::uint32_t lane_for_node(std::uint32_t node) const noexcept {
    return node % static_cast<std::uint32_t>(lanes_.size());
  }
  [[nodiscard]] std::uint32_t worker_count() const noexcept {
    return workers_;
  }

  /// Resolve `lane_count == 0` (auto) to one lane per node. Called by the
  /// Cluster constructor; a no-op when the lane count was set explicitly.
  /// Must run before any event is scheduled or any Rng draw is made.
  void shard_for_nodes(std::uint32_t node_count);

  /// Conservative safe-window width floor (the scalar minimum). Only
  /// meaningful when parallel(); must be a lower bound on the delay of any
  /// cross-lane event insertion. The Cluster derives it from topology
  /// unless the config pinned a value.
  void set_lookahead(DurationNs d) noexcept;
  [[nodiscard]] DurationNs lookahead() const noexcept { return lookahead_; }

  /// Install the per-lane-pair lookahead matrix (row-major, lane_count()^2;
  /// entry (src, dst) = minimum delay of any event insertion from a node of
  /// `src` to a node of `dst`; the diagonal is ignored). Sets the scalar
  /// lookahead to the off-diagonal minimum and precomputes the all-pairs
  /// shortest paths and per-lane round trips the window bounds use. Called
  /// by the Cluster; must run before run()/run_until().
  void set_lookahead_matrix(std::vector<DurationNs> matrix);

  /// Lower bound on the delay of a cross-lane insertion from `src` to
  /// `dst`: the matrix entry when a matrix is installed, else the scalar.
  [[nodiscard]] DurationNs lookahead(std::uint32_t src,
                                     std::uint32_t dst) const noexcept {
    if (la_matrix_.empty()) return lookahead_;
    return la_matrix_[src * lanes_.size() + dst];
  }

  /// lookahead(src, dst) with src = the calling context's lane (the
  /// executing lane, or lane 0 from main context). Cross-lane posts that
  /// want the smallest window-safe delay should use this instead of the
  /// scalar lookahead(), which under a heterogeneous matrix can be below
  /// the pair's safe bound.
  [[nodiscard]] DurationNs lookahead_to(std::uint32_t dst) const noexcept {
    const Lane* a = active_lane_here();
    return lookahead(a != nullptr ? a->index() : 0, dst);
  }

  // --- window protocol counters (sharded mode) ----------------------------

  /// Safe windows executed by run()/run_until() over this engine's life.
  [[nodiscard]] std::uint64_t windows_executed() const noexcept {
    return windows_executed_;
  }
  /// Windows whose bounds were stretched by the quiet-window extension.
  [[nodiscard]] std::uint64_t quiet_extended_windows() const noexcept {
    return quiet_extended_windows_;
  }
  /// (dst, src) mailbox pairs the merge sweep actually absorbed. The sweep
  /// walks only registered dirty pairs, so this must equal
  /// dirty_pairs_posted(); the scaling bench gates on it.
  [[nodiscard]] std::uint64_t merge_pairs_visited() const noexcept {
    return merge_pairs_visited_;
  }
  /// (dst, src) pairs registered dirty by first posts since the last merge,
  /// accumulated across windows.
  [[nodiscard]] std::uint64_t dirty_pairs_posted() const noexcept {
    return dirty_pairs_posted_;
  }
  /// Merged events clamped to the destination clock because a speculative
  /// quiet-window extension executed past their timestamp. Always 0 when
  /// quiet_extension_cap <= 1.
  [[nodiscard]] std::uint64_t causality_clamps() const noexcept;

 private:
  friend class ActiveLaneScope;
  friend class WindowCoordinator;

  static constexpr std::uint32_t kMaxLanes = 256;  // 8 id bits

  [[nodiscard]] Lane* active_lane_here() const noexcept;
  [[nodiscard]] Lane& scheduling_lane() noexcept;
  [[nodiscard]] static EventId make_id(std::uint32_t lane,
                                       std::uint64_t packed) noexcept {
    return (static_cast<EventId>(lane) << 56) | packed;
  }

  void build_lanes(std::uint32_t count);
  void run_classic();
  void run_until_classic(TimeNs deadline);
  void run_windows(bool bounded, TimeNs deadline);

  /// Re-cache the next-event time of every lane whose heap top may have
  /// moved since the last refresh (Lane::take_next_dirty handshake).
  void refresh_next_index();
  /// Fill window_ends_ with this window's per-lane execution bound.
  void compute_window_ends(TimeNs start, bool bounded, TimeNs deadline);

  /// Shortest-path lookahead from src to dst (relays through idle lanes
  /// included); scalar fallback mirrors lookahead(src, dst).
  [[nodiscard]] DurationNs path_lookahead(std::uint32_t src,
                                          std::uint32_t dst) const noexcept {
    if (la_paths_.empty()) return lookahead_;
    return la_paths_[src * lanes_.size() + dst];
  }
  /// Minimum round trip lane -> any peer -> lane: the earliest a lane's own
  /// next event could come back to affect it.
  [[nodiscard]] DurationNs roundtrip_lookahead(
      std::uint32_t lane) const noexcept {
    if (la_roundtrip_.empty()) return 2 * lookahead_;
    return la_roundtrip_[lane];
  }

  std::uint64_t seed_;
  EngineConfig config_;
  std::uint32_t workers_ = 1;
  DurationNs lookahead_ = 0;
  bool auto_shard_ = false;
  TimeNs main_now_ = 0;  ///< window start / final time (sharded mode)
  std::atomic<bool> stopped_{false};
  std::vector<std::unique_ptr<Lane>> lanes_;

  // Window machinery (sharded mode).
  std::vector<DurationNs> la_matrix_;     ///< lanes^2 per-pair lookahead
  std::vector<DurationNs> la_paths_;      ///< lanes^2 all-pairs shortest path
  std::vector<DurationNs> la_roundtrip_;  ///< per-lane min round trip
  NextEventIndex next_index_;
  std::vector<TimeNs> window_ends_;  ///< per-lane bound scratch
  std::uint32_t quiet_factor_ = 1;
  std::uint64_t windows_executed_ = 0;
  std::uint64_t quiet_extended_windows_ = 0;
  std::uint64_t merge_pairs_visited_ = 0;
  std::uint64_t dirty_pairs_posted_ = 0;
};

/// RAII marker (internal): designates `lane` as the lane executing on the
/// calling thread, which routes Engine::at/now/rng to it. Used by the
/// engine's own run loops and the window coordinator's workers.
class ActiveLaneScope {
 public:
  ActiveLaneScope(Engine& engine, Lane& lane) noexcept;
  ~ActiveLaneScope();
  ActiveLaneScope(const ActiveLaneScope&) = delete;
  ActiveLaneScope& operator=(const ActiveLaneScope&) = delete;

 private:
  Engine* prev_engine_;
  Lane* prev_lane_;
};

}  // namespace sym::sim
