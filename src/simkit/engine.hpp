// simkit/engine.hpp
//
// The discrete-event simulation engine at the heart of the simulated
// cluster. The engine owns a single global virtual clock and an event queue.
// Everything above it (execution streams, the fabric, databases) expresses
// the passage of time by scheduling callbacks.
//
// The engine is strictly single-threaded: events with equal timestamps are
// executed in insertion order (FIFO tie-break via a sequence number), which
// together with the seeded Rng makes entire experiments bit-reproducible.
//
// Every timer in the stack funnels through this queue, so its operations
// are engineered for constant factors:
//
//  * Events live in a slot table with generation-tagged ids
//    (id = generation << 32 | slot). cancel() is a direct O(1) slot access
//    — no hash-set insert, and a stale id from a fired event simply fails
//    the generation check instead of poisoning a tombstone set.
//  * The priority queue is an explicit 4-ary heap: shallower than a binary
//    heap (log_4 n levels) and with all four children of a node on one
//    cache line's worth of entries, which measurably speeds up the
//    sift-down on pop. Cancelled entries are skipped with a flag test when
//    they surface, not a set lookup per pop.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "simkit/rng.hpp"
#include "simkit/time.hpp"

namespace sym::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Opaque handle for cancelling a scheduled event. Encodes a slot index
  /// and a generation tag; 0 is never a valid id.
  using EventId = std::uint64_t;

  explicit Engine(std::uint64_t seed = 0x5EEDC0DEULL) : rng_(seed) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  [[nodiscard]] TimeNs now() const noexcept { return now_; }

  /// Deterministic RNG shared by all simulation components.
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// Schedule `cb` at absolute virtual time `t` (clamped to now()).
  EventId at(TimeNs t, Callback cb);

  /// Schedule `cb` after `d` nanoseconds of virtual time.
  EventId after(DurationNs d, Callback cb) { return at(now_ + d, std::move(cb)); }

  /// Cancel a previously scheduled event. Safe to call after the event has
  /// fired (the generation check makes it a no-op). Returns true if the
  /// event was still pending.
  bool cancel(EventId id);

  /// Run until the event queue drains or stop() is called.
  void run();

  /// Run until virtual time would exceed `deadline` (events at exactly
  /// `deadline` still execute), the queue drains, or stop() is called.
  void run_until(TimeNs deadline);

  /// Execute a single event. Returns false if the queue was empty.
  bool step();

  /// Request that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  /// Clear the stop flag so the engine can be driven again.
  void reset_stop() noexcept { stopped_ = false; }

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return pending_;
  }

  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }

 private:
  /// Heap entries are 24 bytes (no callback): the callback lives in the
  /// slot table, so sift operations move small PODs only.
  struct HeapEntry {
    TimeNs t;
    std::uint64_t seq;  ///< monotonically increasing FIFO tie-break
    std::uint32_t slot;
  };

  struct Slot {
    Callback cb;
    std::uint32_t generation = 1;
    std::uint32_t next_free = 0;
    bool in_use = false;
    bool cancelled = false;
  };

  static constexpr std::uint32_t kNoFreeSlot = 0xFFFFFFFFu;

  bool pop_and_run();

  [[nodiscard]] static bool before(const HeapEntry& a,
                                   const HeapEntry& b) noexcept {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx) noexcept;

  void heap_push(HeapEntry e);
  /// Remove and return the top entry (caller checks non-empty).
  HeapEntry heap_pop();
  /// Drop cancelled entries off the top, releasing their slots.
  void drop_cancelled_top();

  TimeNs now_ = 0;
  bool stopped_ = false;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t pending_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFreeSlot;
  Rng rng_;
};

}  // namespace sym::sim
