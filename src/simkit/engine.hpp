// simkit/engine.hpp
//
// The discrete-event simulation engine at the heart of the simulated
// cluster. Everything above it (execution streams, the fabric, databases)
// expresses the passage of time by scheduling callbacks.
//
// The engine is a facade over one or more event *lanes* (lane.hpp). In the
// default configuration there is a single lane and the engine behaves
// exactly like the historical strictly single-threaded implementation:
// events with equal timestamps execute in insertion order (FIFO tie-break
// via a sequence number), which together with the seeded Rng makes entire
// experiments bit-reproducible.
//
// With `EngineConfig::lane_count > 1` (or 0 = one lane per simulated node,
// resolved by the Cluster) the event queue is sharded: each lane owns the
// events of the nodes mapped to it (node % lane_count) plus its own clock,
// heap and Rng stream. Lanes advance in lockstep *safe windows* of width
// `lookahead` — the minimum cross-node messaging delay, derived from the
// fabric's link latency — so events inside one window on different lanes
// cannot causally interact and may execute concurrently on a pool of
// worker threads (window.hpp). Cross-lane insertions travel through
// per-lane-pair mailboxes merged at each window barrier in (src-lane, seq)
// order, and every lane draws from an independently seeded Rng, so results
// are bit-identical for any worker_count (see docs/ARCHITECTURE.md for the
// full determinism argument).
//
// Every timer in the stack funnels through these queues, so the per-lane
// operations keep the historical constant factors:
//
//  * Events live in a slot table with generation-tagged ids
//    (id = lane << 56 | generation << 28 | slot). cancel() is a direct O(1)
//    slot access — no hash-set insert, and a stale id from a fired event
//    simply fails the generation check instead of poisoning a tombstone set.
//  * The priority queue is an explicit 4-ary heap: shallower than a binary
//    heap (log_4 n levels) and with all four children of a node on one
//    cache line's worth of entries, which measurably speeds up the
//    sift-down on pop. Cancelled entries are skipped with a flag test when
//    they surface, not a set lookup per pop.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "simkit/lane.hpp"
#include "simkit/rng.hpp"
#include "simkit/time.hpp"

namespace sym::sim {

/// Parallel-execution knobs. The default (one lane, one worker) is the
/// historical single-threaded engine, bit-for-bit.
struct EngineConfig {
  /// Number of event lanes the queue is sharded into. 1 = classic
  /// single-threaded engine. 0 = auto: one lane per simulated node,
  /// resolved when the Cluster is constructed. The lane count determines
  /// the schedule (and the per-lane Rng streams), so runs with different
  /// lane counts are different experiments; runs with the same lane count
  /// and different worker counts are bit-identical.
  std::uint32_t lane_count = 1;
  /// Worker threads executing lanes during a safe window. Clamped to the
  /// lane count. 1 = run lanes sequentially on the calling thread.
  std::uint32_t worker_count = 1;
  /// Safe-window width. 0 = derive from the cluster's minimum cross-node
  /// link latency (set_lookahead() is called by the Cluster constructor).
  DurationNs lookahead = 0;
};

class Engine {
 public:
  using Callback = Lane::Callback;

  /// Opaque handle for cancelling a scheduled event. Encodes a lane, a slot
  /// index and a generation tag; 0 is never a valid id. Events posted to a
  /// *different* lane from inside a running lane travel through a mailbox
  /// and are not cancellable (at_on returns 0 for them).
  using EventId = std::uint64_t;

  explicit Engine(std::uint64_t seed = 0x5EEDC0DEULL, EngineConfig config = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time: the executing lane's clock from inside a lane,
  /// the window start (or final time) from the coordinating thread.
  [[nodiscard]] TimeNs now() const noexcept;

  /// Deterministic RNG. From inside a running lane this is that lane's
  /// stream; from setup/main context it is lane 0's stream (which is seeded
  /// with the engine seed verbatim, so single-lane behavior is unchanged).
  [[nodiscard]] Rng& rng() noexcept;

  /// Schedule `cb` at absolute virtual time `t` (clamped to now()) on the
  /// current lane (the executing lane, or lane 0 from main context).
  EventId at(TimeNs t, Callback cb);

  /// Schedule `cb` after `d` nanoseconds of virtual time on the current lane.
  EventId after(DurationNs d, Callback cb) {
    return at(now() + d, std::move(cb));
  }

  /// Schedule onto a specific lane. From main context, or when `lane` is the
  /// executing lane, this is a direct (cancellable) insertion. From a
  /// different running lane the event is routed through the deterministic
  /// window mailbox and 0 is returned (not cancellable); `t` must then be at
  /// least one lookahead ahead of the current window start.
  EventId at_on(std::uint32_t lane, TimeNs t, Callback cb);
  EventId after_on(std::uint32_t lane, DurationNs d, Callback cb) {
    return at_on(lane, now() + d, std::move(cb));
  }

  /// Cancel a previously scheduled event. Safe to call after the event has
  /// fired (the generation check makes it a no-op). Returns true if the
  /// event was still pending. Must target the calling context's own lane.
  bool cancel(EventId id);

  /// Run until the event queue drains or stop() is called.
  void run();

  /// Run until virtual time would exceed `deadline` (events at exactly
  /// `deadline` still execute), the queue drains, or stop() is called.
  void run_until(TimeNs deadline);

  /// Execute a single event (the globally earliest; ties broken by lane
  /// index). Returns false if all lanes are empty. Sequential — intended
  /// for tests and debugging.
  bool step();

  /// Request that run()/run_until() return. Takes effect after the current
  /// event (single lane) or at the next window barrier (sharded), so the
  /// stopping point is deterministic for any worker count.
  void stop() noexcept { stopped_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool stopped() const noexcept {
    return stopped_.load(std::memory_order_relaxed);
  }

  /// Clear the stop flag so the engine can be driven again.
  void reset_stop() noexcept {
    stopped_.store(false, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t pending_events() const noexcept;
  [[nodiscard]] std::uint64_t events_processed() const noexcept;

  /// Rolling digest of the executed event stream, folded over the lanes in
  /// lane-index order. Two runs with the same lane count must produce the
  /// same digest for every worker_count; only maintained under
  /// -DSYM_DEBUG_CHECKS=ON (0 otherwise). See docs/STATIC_ANALYSIS.md.
  [[nodiscard]] std::uint64_t event_digest() const noexcept;

#if SYM_DEBUG_CHECKS
  /// Test-only escape hatch: direct access to a Lane, bypassing the at_on
  /// mailbox discipline. Exists so the debug_checks suite can plant a
  /// cross-lane touch and assert the ownership verifier catches it.
  [[nodiscard]] Lane& debug_lane(std::uint32_t lane) { return *lanes_[lane]; }
#endif

  // --- lane topology -------------------------------------------------------

  [[nodiscard]] std::uint32_t lane_count() const noexcept {
    return static_cast<std::uint32_t>(lanes_.size());
  }
  /// True when the event queue is sharded across more than one lane.
  [[nodiscard]] bool parallel() const noexcept { return lanes_.size() > 1; }
  [[nodiscard]] std::uint32_t lane_for_node(std::uint32_t node) const noexcept {
    return node % static_cast<std::uint32_t>(lanes_.size());
  }
  [[nodiscard]] std::uint32_t worker_count() const noexcept {
    return workers_;
  }

  /// Resolve `lane_count == 0` (auto) to one lane per node. Called by the
  /// Cluster constructor; a no-op when the lane count was set explicitly.
  /// Must run before any event is scheduled or any Rng draw is made.
  void shard_for_nodes(std::uint32_t node_count);

  /// Conservative safe-window width. Only meaningful when parallel(); must
  /// be a lower bound on the delay of any cross-lane event insertion. The
  /// Cluster sets it to the minimum cross-node link latency unless the
  /// config pinned a value.
  void set_lookahead(DurationNs d) noexcept;
  [[nodiscard]] DurationNs lookahead() const noexcept { return lookahead_; }

 private:
  friend class ActiveLaneScope;
  friend class WindowCoordinator;

  static constexpr std::uint32_t kMaxLanes = 256;  // 8 id bits

  [[nodiscard]] Lane* active_lane_here() const noexcept;
  [[nodiscard]] Lane& scheduling_lane() noexcept;
  [[nodiscard]] static EventId make_id(std::uint32_t lane,
                                       std::uint64_t packed) noexcept {
    return (static_cast<EventId>(lane) << 56) | packed;
  }

  void build_lanes(std::uint32_t count);
  void run_classic();
  void run_until_classic(TimeNs deadline);
  void run_windows(bool bounded, TimeNs deadline);

  std::uint64_t seed_;
  EngineConfig config_;
  std::uint32_t workers_ = 1;
  DurationNs lookahead_ = 0;
  bool auto_shard_ = false;
  TimeNs main_now_ = 0;  ///< window start / final time (sharded mode)
  std::atomic<bool> stopped_{false};
  std::vector<std::unique_ptr<Lane>> lanes_;
};

/// RAII marker (internal): designates `lane` as the lane executing on the
/// calling thread, which routes Engine::at/now/rng to it. Used by the
/// engine's own run loops and the window coordinator's workers.
class ActiveLaneScope {
 public:
  ActiveLaneScope(Engine& engine, Lane& lane) noexcept;
  ~ActiveLaneScope();
  ActiveLaneScope(const ActiveLaneScope&) = delete;
  ActiveLaneScope& operator=(const ActiveLaneScope&) = delete;

 private:
  Engine* prev_engine_;
  Lane* prev_lane_;
};

}  // namespace sym::sim
