#include "simkit/window.hpp"

#include <cassert>

#include "simkit/engine.hpp"
#include "simkit/lane.hpp"

namespace sym::sim {

WindowCoordinator::WindowCoordinator(Engine& engine, std::uint32_t workers)
    : engine_(engine),
      workers_(workers == 0 ? 1 : workers),
      // Participants: the workers plus the coordinating thread. With one
      // worker the coordinator runs the lanes itself and the barrier is
      // never used (but must still be constructible).
      sync_(workers_ > 1 ? static_cast<std::ptrdiff_t>(workers_) + 1 : 1) {
  if (workers_ > 1) {
    threads_.reserve(workers_);
    for (std::uint32_t w = 0; w < workers_; ++w) {
      threads_.emplace_back([this, w] { worker_main(w); });
    }
  }
}

WindowCoordinator::~WindowCoordinator() {
  if (!threads_.empty()) {
    done_.store(true, std::memory_order_release);
    sync_.arrive_and_wait();  // release workers into their exit check
    for (auto& t : threads_) t.join();
  }
}

void WindowCoordinator::worker_main(std::uint32_t worker) {
  for (;;) {
    sync_.arrive_and_wait();  // window start (or shutdown)
    if (done_.load(std::memory_order_acquire)) return;
    run_lanes_of(worker, window_end_.load(std::memory_order_relaxed));
    sync_.arrive_and_wait();  // window end
  }
}

void WindowCoordinator::run_lanes_of(std::uint32_t worker, TimeNs end) {
  auto& lanes = engine_.lanes_;
  const std::uint32_t stride = threads_.empty() ? 1 : workers_;
  for (std::size_t i = worker; i < lanes.size(); i += stride) {
    Lane& lane = *lanes[i];
    ActiveLaneScope scope(engine_, lane);
    lane.run_window(end);
  }
}

void WindowCoordinator::execute_window(TimeNs end) {
  if (threads_.empty()) {
    run_lanes_of(0, end);
  } else {
    window_end_.store(end, std::memory_order_relaxed);
    sync_.arrive_and_wait();  // open the window
    sync_.arrive_and_wait();  // all lanes done (barrier = full sync point)
  }
  merge();
}

void WindowCoordinator::merge() {
  auto& lanes = engine_.lanes_;
  // Fixed (dst, src, append) order: the sequence numbers the destination
  // assigns to merged events depend only on the mailbox contents, never on
  // which worker finished first.
  for (auto& dst : lanes) {
    for (auto& src : lanes) {
      if (dst != src) dst->absorb_outbox_from(*src);
    }
  }
}

}  // namespace sym::sim
