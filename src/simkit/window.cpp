#include "simkit/window.hpp"

#include <algorithm>
#include <cassert>

#include "simkit/engine.hpp"
#include "simkit/lane.hpp"

namespace sym::sim {

WindowCoordinator::WindowCoordinator(Engine& engine, std::uint32_t workers)
    : engine_(engine),
      workers_(workers == 0 ? 1 : workers),
      // Participants: the workers plus the coordinating thread. With one
      // worker the coordinator runs the lanes itself and the barrier is
      // never used (but must still be constructible).
      sync_(workers_ > 1 ? workers_ + 1 : 1) {
  const auto lane_count = static_cast<std::uint32_t>(engine_.lanes_.size());
  // Initial assignment: the historical static stride.
  worker_lanes_.resize(workers_);
  for (std::uint32_t i = 0; i < lane_count; ++i) {
    worker_lanes_[i % workers_].push_back(i);
  }
  rebalance_baseline_.resize(lane_count);
  for (std::uint32_t i = 0; i < lane_count; ++i) {
    rebalance_baseline_[i] = engine_.lanes_[i]->processed();
  }
  if (workers_ > 1) {
    threads_.reserve(workers_);
    for (std::uint32_t w = 0; w < workers_; ++w) {
      threads_.emplace_back([this, w] { worker_main(w); });
    }
  }
}

WindowCoordinator::~WindowCoordinator() {
  if (!threads_.empty()) {
    done_.store(true, std::memory_order_release);
    sync_.arrive_and_wait();  // release workers into their exit check
    for (auto& t : threads_) t.join();
  }
}

void WindowCoordinator::worker_main(std::uint32_t worker) {
  for (;;) {
    sync_.arrive_and_wait();  // window start (or shutdown)
    if (done_.load(std::memory_order_acquire)) return;
    run_lanes_of(worker, window_ends_.load(std::memory_order_relaxed));
    sync_.arrive_and_wait();  // window end
  }
}

void WindowCoordinator::run_lanes_of(std::uint32_t worker,
                                     const TimeNs* ends) {
  auto& lanes = engine_.lanes_;
  for (const std::uint32_t i : worker_lanes_[worker]) {
    Lane& lane = *lanes[i];
    ActiveLaneScope scope(engine_, lane);
    lane.run_window(ends[i]);
  }
}

void WindowCoordinator::execute_window(const TimeNs* ends) {
  if (threads_.empty()) {
    run_lanes_of(0, ends);
  } else {
    window_ends_.store(ends, std::memory_order_relaxed);
    sync_.arrive_and_wait();  // open the window
    sync_.arrive_and_wait();  // all lanes done (barrier = full sync point)
  }
  merge();
  maybe_rebalance();
}

void WindowCoordinator::merge() {
  auto& lanes = engine_.lanes_;
  // Collect the (dst, src) pairs that actually received a post this window
  // from each source lane's dirty list, then absorb them in canonical
  // (dst, src, append) order — the same relative order the dense lanes^2
  // sweep gave the nonempty pairs, so the sequence numbers the destination
  // assigns to merged events depend only on the mailbox contents, never on
  // which worker finished first (or how lanes were assigned to workers).
  merge_pairs_.clear();
  for (std::uint32_t src = 0; src < lanes.size(); ++src) {
    for (const std::uint32_t dst : lanes[src]->dirty_outboxes()) {
      merge_pairs_.push_back((static_cast<std::uint64_t>(dst) << 32) | src);
    }
    lanes[src]->clear_dirty_outboxes();
  }
  last_dirty_pairs_ = merge_pairs_.size();
  std::sort(merge_pairs_.begin(), merge_pairs_.end());
  last_merge_pairs_ = 0;
  for (const std::uint64_t key : merge_pairs_) {
    const auto dst = static_cast<std::uint32_t>(key >> 32);
    const auto src = static_cast<std::uint32_t>(key);
    lanes[dst]->absorb_outbox_from(*lanes[src]);
    ++last_merge_pairs_;
  }
}

void WindowCoordinator::maybe_rebalance() {
  const std::uint32_t period = engine_.config_.rebalance_period;
  if (workers_ <= 1 || period == 0) return;
  if (++windows_since_rebalance_ < period) return;
  windows_since_rebalance_ = 0;
  auto& lanes = engine_.lanes_;
  const auto n = static_cast<std::uint32_t>(lanes.size());
  // Per-lane work since the last rebalance, by executed-event count (the
  // only load signal that is simulation state, hence identical on every
  // run — wall-clock timings would make the assignment nondeterministic).
  struct Item {
    std::uint64_t delta;
    std::uint32_t lane;
  };
  std::vector<Item> items(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t p = lanes[i]->processed();
    items[i] = Item{p - rebalance_baseline_[i], i};
    rebalance_baseline_[i] = p;
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.delta != b.delta) return a.delta > b.delta;
    return a.lane < b.lane;
  });
  // LPT greedy: heaviest lane first onto the least-loaded worker (ties by
  // worker index). Within ~4/3 of optimal makespan, and cheap enough to run
  // between windows.
  std::vector<std::uint64_t> load(workers_, 0);
  for (auto& wl : worker_lanes_) wl.clear();
  for (const Item& it : items) {
    std::uint32_t best = 0;
    for (std::uint32_t w = 1; w < workers_; ++w) {
      if (load[w] < load[best]) best = w;
    }
    load[best] += it.delta;
    worker_lanes_[best].push_back(it.lane);
  }
  // Each worker still visits its lanes in ascending lane order.
  for (auto& wl : worker_lanes_) std::sort(wl.begin(), wl.end());
}

}  // namespace sym::sim
