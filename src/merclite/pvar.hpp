// merclite/pvar.hpp
//
// The performance-variable (PVAR) exchange interface inside the RPC
// library — the paper's §IV-B contribution, modeled on the MPI Tools
// Information Interface. External tools (the SYMBIOSYS layer in margolite)
// access library internals through sessions:
//
//   1. initialize a PVAR session  -> PvarSession
//   2. query supported PVARs      -> count() / info(i)
//   3. allocate handles           -> alloc()
//   4. sample                     -> read(handle [, hg handle object])
//   5. optionally tune            -> write(handle, value)   [writable PVARs]
//   6. finalize the session       -> PvarSession destructor / finalize()
//
// PVAR classes follow Table I; the concrete variables follow Table II.
// Writable PVARs extend the paper's read-only interface with the control
// channel its §VII future work calls for: a tool (or the in-stack adaptive
// controller) can retune library thresholds — e.g. the eager-vs-RDMA
// overflow limit — through the same tool interface it samples from. The
// full catalogue, units and paper-table references are in docs/PVARS.md.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace sym::hg {

class Handle;

/// Table I: classes of performance variables.
enum class PvarClass : std::uint8_t {
  kState,          ///< one of a set of discrete states
  kCounter,        ///< monotonically increasing value
  kTimer,          ///< interval event timer
  kLevel,          ///< utilization level of a resource
  kSize,           ///< size of a resource
  kHighWatermark,  ///< highest recorded value
  kLowWatermark,   ///< lowest recorded value
};

/// @returns the Table I spelling of a PVAR class (e.g. "HIGHWATERMARK").
[[nodiscard]] const char* to_string(PvarClass c) noexcept;

/// Binding of a PVAR to a library object. NO_OBJECT PVARs are global to the
/// library instance; HANDLE PVARs live and die with one RPC handle.
enum class PvarBind : std::uint8_t {
  kNoObject,
  kHandle,
};

/// @returns the MPI_T-style spelling of a PVAR binding (e.g. "NO_OBJECT").
[[nodiscard]] const char* to_string(PvarBind b) noexcept;

/// Static description of one exported PVAR, as returned by the
/// query-supported-PVARs step of the session protocol.
struct PvarInfo {
  std::string name;         ///< stable lookup key (Table II "Name")
  std::string description;  ///< human-readable summary
  PvarClass cls{};          ///< Table I class
  PvarBind bind{};          ///< object binding
  /// True when the PVAR accepts writes (a runtime-tunable control knob,
  /// e.g. `eager_buffer_size`). Read-only PVARs reject PvarSession::write.
  bool writable = false;
};

/// Reader callback: samples a PVAR's current value. For HANDLE-bound PVARs
/// the second argument must be the bound handle; NO_OBJECT readers ignore it.
using PvarReader = std::function<double(const Handle*)>;

/// Writer callback backing a writable PVAR: applies a new value to the
/// library-internal knob the PVAR exposes.
using PvarWriter = std::function<void(double)>;

/// The library-side registry of exported PVARs (owned by hg::Class).
class PvarRegistry {
 public:
  /// Register a read-only PVAR; returns its stable index.
  int add(PvarInfo info, PvarReader reader);

  /// Register a writable PVAR (a control knob). `info.writable` is forced
  /// to true; returns the stable index.
  int add(PvarInfo info, PvarReader reader, PvarWriter writer);

  /// @returns the number of exported PVARs.
  [[nodiscard]] int count() const noexcept {
    return static_cast<int>(vars_.size());
  }
  /// @returns the static description of the PVAR at `index`.
  [[nodiscard]] const PvarInfo& info(int index) const {
    return vars_.at(static_cast<std::size_t>(index)).info;
  }
  /// Sample the PVAR at `index` (`h` only for HANDLE-bound PVARs). The
  /// index is validated once at handle-allocation time; sampling itself is
  /// a hot path (every trace event reads up to three PVARs) and does no
  /// bounds re-check.
  [[nodiscard]] double read(int index, const Handle* h) const {
    return vars_[static_cast<std::size_t>(index)].reader(h);
  }
  /// Apply `value` to the writable PVAR at `index`.
  /// @throws std::logic_error when the PVAR is read-only.
  void write(int index, double value);

  /// Index lookup by name; -1 if unknown.
  [[nodiscard]] int find(const std::string& name) const noexcept;

 private:
  struct Entry {
    PvarInfo info;
    PvarReader reader;
    PvarWriter writer;  ///< empty for read-only PVARs
  };
  std::vector<Entry> vars_;
};

/// An allocated handle on one PVAR within a session. The binding is cached
/// at allocation time so the per-sample path never touches the registry's
/// PvarInfo table.
struct PvarHandle {
  int index = -1;
  PvarBind bind = PvarBind::kNoObject;
  [[nodiscard]] bool valid() const noexcept { return index >= 0; }
};

/// A tool's sampling (and tuning) session against one hg::Class's registry.
class PvarSession {
 public:
  PvarSession(PvarRegistry& registry, std::uint32_t session_id)
      : registry_(&registry), id_(session_id) {}

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] bool active() const noexcept { return registry_ != nullptr; }

  /// @returns the number of PVARs exported by the attached registry.
  [[nodiscard]] int count() const { return registry_->count(); }
  /// @returns the static description of the PVAR at `index`.
  [[nodiscard]] const PvarInfo& info(int index) const {
    return registry_->info(index);
  }

  /// Allocate a handle for the PVAR at `index`.
  [[nodiscard]] PvarHandle alloc(int index);

  /// Allocate by name; returns an invalid handle if the name is unknown.
  [[nodiscard]] PvarHandle alloc(const std::string& name);

  /// Sample a PVAR. HANDLE-bound PVARs require the bound hg handle.
  [[nodiscard]] double read(PvarHandle h, const Handle* obj = nullptr) const;

  /// Tune a writable PVAR to `value` (the §VII control channel).
  /// @throws std::logic_error  when the PVAR is read-only or the session
  ///                           was finalized.
  void write(PvarHandle h, double value);

  /// Release all handles and detach from the registry.
  void finalize() noexcept {
    registry_ = nullptr;
    allocated_ = 0;
  }

  /// @returns how many handles this session has allocated (diagnostics).
  [[nodiscard]] std::uint32_t allocated_handles() const noexcept {
    return allocated_;
  }

 private:
  PvarRegistry* registry_;
  std::uint32_t id_;
  std::uint32_t allocated_ = 0;
};

/// Indices of the HANDLE-bound timers stored inline in every hg::Handle
/// (Table II's TIMER/HANDLE rows plus the origin-side completion callback).
enum HandleTimer : std::uint8_t {
  kHtInternalRdma = 0,   ///< t3->t4 extra-metadata RDMA on the target
  kHtInputSer,           ///< t2->t3 input serialization on the origin
  kHtInputDeser,         ///< t6->t7 input deserialization on the target
  kHtOutputSer,          ///< t9->t10 output serialization on the target
  kHtOutputDeser,        ///< response deserialization on the origin
  kHtOriginCb,           ///< t12->t14 origin completion-callback delay
  kHtCount,
};

}  // namespace sym::hg
