// merclite/pvar.hpp
//
// The performance-variable (PVAR) exchange interface inside the RPC
// library — the paper's §IV-B contribution, modeled on the MPI Tools
// Information Interface. External tools (the SYMBIOSYS layer in margolite)
// access library internals through sessions:
//
//   1. initialize a PVAR session  -> PvarSession
//   2. query supported PVARs      -> count() / info(i)
//   3. allocate handles           -> alloc()
//   4. sample                     -> read(handle [, hg handle object])
//   5. finalize the session       -> PvarSession destructor / finalize()
//
// PVAR classes follow Table I; the concrete variables follow Table II.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace sym::hg {

class Handle;

/// Table I: classes of performance variables.
enum class PvarClass : std::uint8_t {
  kState,          ///< one of a set of discrete states
  kCounter,        ///< monotonically increasing value
  kTimer,          ///< interval event timer
  kLevel,          ///< utilization level of a resource
  kSize,           ///< size of a resource
  kHighWatermark,  ///< highest recorded value
  kLowWatermark,   ///< lowest recorded value
};

[[nodiscard]] const char* to_string(PvarClass c) noexcept;

/// Binding of a PVAR to a library object. NO_OBJECT PVARs are global to the
/// library instance; HANDLE PVARs live and die with one RPC handle.
enum class PvarBind : std::uint8_t {
  kNoObject,
  kHandle,
};

[[nodiscard]] const char* to_string(PvarBind b) noexcept;

struct PvarInfo {
  std::string name;
  std::string description;
  PvarClass cls{};
  PvarBind bind{};
};

/// Reader callback: samples a PVAR's current value. For HANDLE-bound PVARs
/// the second argument must be the bound handle; NO_OBJECT readers ignore it.
using PvarReader = std::function<double(const Handle*)>;

/// The library-side registry of exported PVARs (owned by hg::Class).
class PvarRegistry {
 public:
  /// Register a PVAR; returns its stable index.
  int add(PvarInfo info, PvarReader reader);

  [[nodiscard]] int count() const noexcept {
    return static_cast<int>(vars_.size());
  }
  [[nodiscard]] const PvarInfo& info(int index) const {
    return vars_.at(static_cast<std::size_t>(index)).info;
  }
  [[nodiscard]] double read(int index, const Handle* h) const {
    return vars_.at(static_cast<std::size_t>(index)).reader(h);
  }

  /// Index lookup by name; -1 if unknown.
  [[nodiscard]] int find(const std::string& name) const noexcept;

 private:
  struct Entry {
    PvarInfo info;
    PvarReader reader;
  };
  std::vector<Entry> vars_;
};

/// An allocated handle on one PVAR within a session.
struct PvarHandle {
  int index = -1;
  [[nodiscard]] bool valid() const noexcept { return index >= 0; }
};

/// A tool's sampling session against one hg::Class's registry.
class PvarSession {
 public:
  PvarSession(const PvarRegistry& registry, std::uint32_t session_id)
      : registry_(&registry), id_(session_id) {}

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] bool active() const noexcept { return registry_ != nullptr; }

  [[nodiscard]] int count() const { return registry_->count(); }
  [[nodiscard]] const PvarInfo& info(int index) const {
    return registry_->info(index);
  }

  /// Allocate a handle for the PVAR at `index`.
  [[nodiscard]] PvarHandle alloc(int index);

  /// Allocate by name; returns an invalid handle if the name is unknown.
  [[nodiscard]] PvarHandle alloc(const std::string& name);

  /// Sample a PVAR. HANDLE-bound PVARs require the bound hg handle.
  [[nodiscard]] double read(PvarHandle h, const Handle* obj = nullptr) const;

  /// Release all handles and detach from the registry.
  void finalize() noexcept {
    registry_ = nullptr;
    allocated_ = 0;
  }

  [[nodiscard]] std::uint32_t allocated_handles() const noexcept {
    return allocated_;
  }

 private:
  const PvarRegistry* registry_;
  std::uint32_t id_;
  std::uint32_t allocated_ = 0;
};

/// Indices of the HANDLE-bound timers stored inline in every hg::Handle
/// (Table II's TIMER/HANDLE rows plus the origin-side completion callback).
enum HandleTimer : std::uint8_t {
  kHtInternalRdma = 0,   ///< t3->t4 extra-metadata RDMA on the target
  kHtInputSer,           ///< t2->t3 input serialization on the origin
  kHtInputDeser,         ///< t6->t7 input deserialization on the target
  kHtOutputSer,          ///< t9->t10 output serialization on the target
  kHtOutputDeser,        ///< response deserialization on the origin
  kHtOriginCb,           ///< t12->t14 origin completion-callback delay
  kHtCount,
};

}  // namespace sym::hg
