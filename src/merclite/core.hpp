// merclite/core.hpp
//
// merclite: the Mercury-model RPC library. Implements the RPC execution
// model of the paper's Fig. 2:
//
//   origin: forward() serializes input (t2->t3), sends the eager portion and
//   registers a completion callback; the progress engine matches the
//   response (t12) and trigger() invokes the callback (t14).
//
//   target: progress() receives the request (t3); if the input overflowed
//   the eager buffer, an internal RDMA fetches the remainder (t3->t4);
//   the registered arrival callback fires (t4) — margolite uses it to spawn
//   a handler ULT; respond() serializes output (t9->t10) and the sent
//   callback fires when the response left the node (t13).
//
// The class also hosts the PVAR registry (pvar.hpp) exporting the
// Table II performance variables.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "merclite/proc.hpp"
#include "merclite/pvar.hpp"
#include "simkit/cluster.hpp"
#include "simkit/time.hpp"
#include "sofi/fabric.hpp"

namespace sym::hg {

/// RPC identifier: 64-bit FNV-1a hash of the registered name.
using RpcId = std::uint64_t;

/// Demux tags on the wire.
inline constexpr std::uint64_t kTagRequest = 1;
inline constexpr std::uint64_t kTagResponse = 2;

/// Header flags.
inline constexpr std::uint8_t kFlagEagerOverflow = 0x1;
inline constexpr std::uint8_t kFlagTracing = 0x2;
/// Response carries a library-level error (no matching handler/provider).
inline constexpr std::uint8_t kFlagError = 0x4;
/// Response is an admission-control early-reject: the target's handler pool
/// was over its backpressure watermark and the request was never dispatched.
/// The origin should back off and retry (margolite::Instance::forward_retry).
inline constexpr std::uint8_t kFlagBusy = 0x8;

struct ClassConfig {
  /// Eager buffer limit: request bodies beyond this take the internal-RDMA
  /// path for the excess (paper §V-B: Sonata's large RPC metadata).
  std::size_t eager_limit = 4096;
  /// OFI_max_events: bounded completion-queue read per progress call. The
  /// paper's default (set inside Mercury) is 16; configuration C6 raises it
  /// to 64.
  std::size_t max_events = 16;

  // Serialization cost model, charged as ULT compute.
  sim::DurationNs ser_base = sim::nsec(3000);
  double ser_ns_per_byte = 0.8;
  sim::DurationNs deser_base = sim::nsec(4000);
  double deser_ns_per_byte = 2.0;

  /// CPU cost of progress-loop event processing (per call + per event).
  sim::DurationNs progress_base_cost = sim::nsec(2000);
  sim::DurationNs progress_per_event_cost = sim::nsec(800);
  /// CPU cost of dispatching one completion callback in trigger().
  sim::DurationNs trigger_dispatch_cost = sim::nsec(600);

  /// Eager-path buffer pool: payload buffers taken off the wire are
  /// recycled through a per-instance free list (up to this many) instead of
  /// being freed and re-allocated for every RPC. 0 disables recycling.
  /// Host-side optimization only — wire sizes and timing are unchanged.
  std::size_t buffer_pool_limit = 64;
};

/// Wire header carried by every RPC request, including the SYMBIOSYS
/// metadata the paper propagates: the 64-bit callpath breadcrumb, the
/// globally unique request id, the per-request event order counter, and the
/// Lamport clock.
struct RpcHeader {
  RpcId rpc_id = 0;
  std::uint16_t provider_id = 0;
  std::uint64_t op_seq = 0;
  std::uint64_t breadcrumb = 0;
  std::uint64_t request_id = 0;
  std::uint32_t trace_order = 0;
  std::uint64_t lamport = 0;
  std::uint8_t flags = 0;
  std::uint64_t body_size = 0;
};

void put(BufWriter& w, const RpcHeader& h);
void get(BufReader& r, RpcHeader& h);

/// Serialized size of an RpcHeader on the wire.
[[nodiscard]] std::size_t rpc_header_wire_size() noexcept;

class Class;

/// One RPC operation's state, on either the origin or the target side.
/// HANDLE-bound PVARs (Table II) live inside the handle and go out of scope
/// with it, exactly as the paper describes.
class Handle : public std::enable_shared_from_this<Handle> {
 public:
  RpcHeader header;
  std::vector<std::byte> body;           ///< serialized request input
  std::vector<std::byte> response_body;  ///< serialized response output

  /// Simulated registered-memory buffer exposed by the origin for bulk
  /// transfers (Mercury bulk handle). The target may only dereference it
  /// after a bulk_transfer() on this handle completes. Use the typed
  /// helpers to access it.
  std::shared_ptr<const void> attachment;
  std::uint64_t attachment_bytes = 0;

  template <typename T>
  void attach(std::shared_ptr<const T> data, std::uint64_t bytes) {
    attachment = std::move(data);
    attachment_bytes = bytes;
  }
  template <typename T>
  [[nodiscard]] const T* attached() const noexcept {
    return static_cast<const T*>(attachment.get());
  }

  [[nodiscard]] bool target_side() const noexcept { return target_side_; }
  [[nodiscard]] ofi::EpAddr peer_addr() const noexcept { return peer_; }

  /// HANDLE-bound timer PVAR storage (values in nanoseconds).
  void set_timer(HandleTimer t, double ns) noexcept { timers_[t] = ns; }
  [[nodiscard]] double timer(HandleTimer t) const noexcept {
    return timers_[t];
  }

  /// t3 on the target: when the request surfaced in progress().
  [[nodiscard]] sim::TimeNs received_at() const noexcept {
    return received_at_;
  }
  /// t12 on the origin: when the response completion was queued.
  [[nodiscard]] sim::TimeNs response_queued_at() const noexcept {
    return response_queued_at_;
  }

 private:
  friend class Class;
  bool target_side_ = false;
  ofi::EpAddr peer_ = ofi::kInvalidAddr;
  sim::TimeNs received_at_ = 0;
  sim::TimeNs response_queued_at_ = 0;
  double timers_[kHtCount] = {};
};

using HandlePtr = std::shared_ptr<Handle>;

/// Target-side: invoked from progress() when a request is ready to execute
/// (the paper's t4). margolite spawns the handler ULT here.
using ArrivalCallback = std::function<void(HandlePtr)>;
/// Origin-side: invoked from trigger() when the response is available (t14).
using CompletionCallback = std::function<void(HandlePtr)>;
/// Target-side: invoked from trigger() when the response has been sent (t13).
using SentCallback = std::function<void(HandlePtr)>;

/// One RPC library instance per simulated process.
class Class {
 public:
  Class(ofi::Fabric& fabric, sim::Process& process, ClassConfig config = {});
  Class(const Class&) = delete;
  Class& operator=(const Class&) = delete;

  [[nodiscard]] ofi::Endpoint& endpoint() noexcept { return endpoint_; }
  [[nodiscard]] ofi::EpAddr addr() const noexcept { return endpoint_.addr(); }
  [[nodiscard]] const ClassConfig& config() const noexcept { return config_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return fabric_.engine(); }
  [[nodiscard]] sim::Process& process() noexcept { return process_; }

  /// OFI_max_events is runtime-tunable (configuration C6 raises it).
  void set_max_events(std::size_t n) noexcept { config_.max_events = n; }

  /// The eager-vs-RDMA overflow threshold is runtime-tunable too — also
  /// reachable through the writable `eager_buffer_size` PVAR, which is how
  /// the adaptive controller retunes it.
  void set_eager_limit(std::size_t n) noexcept { config_.eager_limit = n; }

  /// Register an RPC by name. The id is the FNV-1a hash of the name, so
  /// origin and target agree without an exchange. `on_arrival` may be empty
  /// on pure clients.
  RpcId register_rpc(const std::string& name, ArrivalCallback on_arrival);

  /// Reverse lookup for reporting; nullptr if unknown.
  [[nodiscard]] const std::string* rpc_name(RpcId id) const;

  /// Create an origin-side handle addressed to `dest`.
  [[nodiscard]] HandlePtr create_handle(ofi::EpAddr dest, RpcId rpc,
                                        std::uint16_t provider_id);

  /// Origin: serialize (charging t2->t3 cost), post the request, register
  /// the completion callback. Must run in ULT context.
  void forward(const HandlePtr& h, std::vector<std::byte> input,
               CompletionCallback on_complete);

  /// Target: serialize the output (t9->t10), post the response, register
  /// the sent callback (t13). Must run in ULT context.
  void respond(const HandlePtr& h, std::vector<std::byte> output,
               SentCallback on_sent);

  /// Target: pull `bytes` of bulk data from the origin of `h` (Mercury's
  /// bulk interface used by BAKE and sdskv_put_packed). `done` runs from
  /// trigger() when the transfer completes.
  void bulk_transfer(const HandlePtr& h, std::uint64_t bytes,
                     std::function<void()> done);

  /// Cancel a posted origin-side operation: the handle is unposted and its
  /// completion callback is dropped, so a late response is silently
  /// discarded (HG_Cancel semantics). Returns true if the op was pending.
  bool cancel(const HandlePtr& h);

  /// Charge response-output deserialization on the calling ULT and record
  /// the handle timer (origin side, after completion).
  void charge_output_deserialize(const HandlePtr& h);

  /// Charge request-input deserialization (t6->t7) on the calling ULT and
  /// record the handle timer (target side, at handler start).
  void charge_input_deserialize(const HandlePtr& h);

  /// Read up to max_events OFI completions and convert them into callback
  /// queue entries. Returns the number of OFI events read (the
  /// num_ofi_events_read PVAR). Charges progress CPU cost if in ULT context.
  std::size_t progress();

  /// Run up to `max` queued completion callbacks. Returns how many ran.
  std::size_t trigger(std::size_t max = ~std::size_t{0});

  /// Block the calling ULT until OFI events are pending or `timeout`
  /// elapses. Returns true if events are pending.
  bool wait_for_events(sim::DurationNs timeout);

  /// True if either the OFI CQ or the callback queue holds work.
  [[nodiscard]] bool has_pending_work() const noexcept {
    return !endpoint_.cq().empty() || !callback_queue_.empty();
  }

  // --- PVAR interface (paper §IV-B2) ---
  [[nodiscard]] PvarRegistry& pvars() noexcept { return pvars_; }
  [[nodiscard]] PvarSession pvar_session_init() {
    return PvarSession(pvars_, next_session_id_++);
  }

  // --- raw metrics backing the NO_OBJECT PVARs ---
  [[nodiscard]] std::size_t num_posted_handles() const noexcept {
    return posted_.size();
  }
  [[nodiscard]] std::size_t completion_queue_size() const noexcept {
    return callback_queue_.size();
  }
  [[nodiscard]] std::size_t num_ofi_events_read() const noexcept {
    return last_ofi_events_read_;
  }
  [[nodiscard]] std::uint64_t num_rpcs_invoked() const noexcept {
    return num_rpcs_invoked_;
  }
  [[nodiscard]] std::uint64_t num_rpcs_handled() const noexcept {
    return num_rpcs_handled_;
  }
  [[nodiscard]] std::uint64_t bulk_bytes_total() const noexcept {
    return bulk_bytes_total_;
  }
  [[nodiscard]] std::uint64_t eager_overflows() const noexcept {
    return eager_overflows_;
  }
  [[nodiscard]] std::uint64_t cancellations() const noexcept {
    return cancellations_;
  }
  /// Wire-buffer pool hits (a send or receive reused a recycled buffer).
  [[nodiscard]] std::uint64_t buffer_pool_hits() const noexcept {
    return buffer_pool_hits_;
  }
  /// Wire-buffer requests served by a fresh allocation.
  [[nodiscard]] std::uint64_t buffer_pool_misses() const noexcept {
    return buffer_pool_misses_;
  }

 private:
  struct QueuedCallback {
    std::function<void()> fn;
  };

  void handle_request_arrival(ofi::CqEntry&& entry);
  void handle_response_arrival(ofi::CqEntry&& entry);
  /// Take a (cleared) wire buffer from the pool, or a fresh one.
  [[nodiscard]] std::vector<std::byte> acquire_buffer();
  /// Return a wire buffer's storage to the pool once its bytes were copied
  /// out (receive path) — capacity is retained for the next send.
  void recycle_buffer(std::vector<std::byte>&& buf);
  void enqueue_callback(std::function<void()> fn);
  void charge_compute(sim::DurationNs d);
  [[nodiscard]] sim::DurationNs ser_cost(std::size_t bytes) const noexcept;
  [[nodiscard]] sim::DurationNs deser_cost(std::size_t bytes) const noexcept;
  void register_pvars();

  ofi::Fabric& fabric_;
  sim::Process& process_;
  ClassConfig config_;
  ofi::Endpoint& endpoint_;

  // Arrival callbacks live in stable slots (deque: no reallocation on
  // growth) so dispatch borrows a pointer instead of copying the
  // std::function per request; the map only indexes into the slots.
  std::deque<ArrivalCallback> arrival_slots_;
  std::unordered_map<RpcId, std::size_t> rpc_handlers_;  // id -> slot index
  std::unordered_map<RpcId, std::string> rpc_names_;

  std::uint64_t next_op_seq_ = 1;
  std::unordered_map<std::uint64_t, HandlePtr> posted_;  // op_seq -> handle
  std::unordered_map<std::uint64_t, CompletionCallback> completion_cbs_;

  std::uint64_t next_ctx_ = 1;
  std::unordered_map<std::uint64_t, std::function<void(const ofi::CqEntry&)>>
      pending_ctx_;  // send-complete / rdma-complete continuations

  std::deque<QueuedCallback> callback_queue_;

  PvarRegistry pvars_;
  std::uint32_t next_session_id_ = 1;

  std::size_t last_ofi_events_read_ = 0;
  std::size_t min_ofi_events_read_ = ~std::size_t{0};
  std::uint64_t num_rpcs_invoked_ = 0;
  std::uint64_t num_rpcs_handled_ = 0;
  std::uint64_t bulk_bytes_total_ = 0;
  std::uint64_t eager_overflows_ = 0;
  std::uint64_t cancellations_ = 0;
  std::size_t callback_queue_hwm_ = 0;

  // Eager-path wire-buffer free list (see ClassConfig::buffer_pool_limit).
  std::vector<std::vector<std::byte>> buffer_pool_;
  std::uint64_t buffer_pool_hits_ = 0;
  std::uint64_t buffer_pool_misses_ = 0;
};

}  // namespace sym::hg
