// merclite/proc.hpp
//
// Wire serialization ("proc" in Mercury terminology). RPC argument structs
// are genuinely encoded to / decoded from byte buffers — the byte counts
// drive both the network timing model and the (de)serialization cost that
// the paper's Sonata case study measures (Fig. 7).
//
// Encoding: little-endian fixed-width integers, u32-length-prefixed strings
// and vectors. All quantities pass through put()/get() overloads, extended
// by services via ADL for their own argument structs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace sym::hg {

/// Growable output buffer.
class BufWriter {
 public:
  BufWriter() = default;
  /// Adopt `storage` as the backing buffer (cleared, capacity kept). Used
  /// by the RPC layer's buffer pool to recycle payload allocations.
  explicit BufWriter(std::vector<std::byte> storage) noexcept
      : buf_(std::move(storage)) {
    buf_.clear();
  }

  [[nodiscard]] const std::vector<std::byte>& buffer() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::byte> take() noexcept {
    return std::move(buf_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

  void write_raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Append `n` zero bytes: models payload regions whose content is
  /// irrelevant to the experiment but whose size must hit the wire.
  void write_zeros(std::size_t n) { buf_.resize(buf_.size() + n); }

 private:
  std::vector<std::byte> buf_;
};

/// Bounds-checked input cursor over a received buffer.
class BufReader {
 public:
  BufReader(const std::byte* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit BufReader(const std::vector<std::byte>& buf)
      : BufReader(buf.data(), buf.size()) {}

  void read_raw(void* out, std::size_t n) {
    if (pos_ + n > size_) throw std::out_of_range("proc: buffer underrun");
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  void skip(std::size_t n) {
    if (pos_ + n > size_) throw std::out_of_range("proc: buffer underrun");
    pos_ += n;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --- integral types -------------------------------------------------------

template <typename T>
  requires std::is_integral_v<T> || std::is_floating_point_v<T>
void put(BufWriter& w, T v) {
  w.write_raw(&v, sizeof(T));
}

template <typename T>
  requires std::is_integral_v<T> || std::is_floating_point_v<T>
void get(BufReader& r, T& v) {
  r.read_raw(&v, sizeof(T));
}

inline void put(BufWriter& w, bool v) { put(w, static_cast<std::uint8_t>(v)); }
inline void get(BufReader& r, bool& v) {
  std::uint8_t b = 0;
  get(r, b);
  v = (b != 0);
}

// --- strings ----------------------------------------------------------------

inline void put(BufWriter& w, const std::string& s) {
  put(w, static_cast<std::uint32_t>(s.size()));
  w.write_raw(s.data(), s.size());
}

inline void get(BufReader& r, std::string& s) {
  std::uint32_t n = 0;
  get(r, n);
  s.resize(n);
  if (n > 0) r.read_raw(s.data(), n);
}

// --- vectors & pairs --------------------------------------------------------

template <typename T>
void put(BufWriter& w, const std::vector<T>& v) {
  put(w, static_cast<std::uint32_t>(v.size()));
  for (const auto& e : v) put(w, e);
}

template <typename T>
void get(BufReader& r, std::vector<T>& v) {
  std::uint32_t n = 0;
  get(r, n);
  v.clear();
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    T e{};
    get(r, e);
    v.push_back(std::move(e));
  }
}

template <typename A, typename B>
void put(BufWriter& w, const std::pair<A, B>& p) {
  put(w, p.first);
  put(w, p.second);
}

template <typename A, typename B>
void get(BufReader& r, std::pair<A, B>& p) {
  get(r, p.first);
  get(r, p.second);
}

// --- whole-struct helpers ----------------------------------------------------

/// Encode any put()-able value into a fresh buffer.
template <typename T>
[[nodiscard]] std::vector<std::byte> encode(const T& value) {
  BufWriter w;
  put(w, value);
  return w.take();
}

/// Decode a whole buffer into a default-constructed T.
template <typename T>
[[nodiscard]] T decode(const std::vector<std::byte>& buf) {
  BufReader r(buf);
  T value{};
  get(r, value);
  return value;
}

}  // namespace sym::hg
