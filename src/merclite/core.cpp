#include "merclite/core.hpp"

#include <cassert>
#include <cmath>
#include <utility>

#include "argolite/runtime.hpp"

namespace sym::hg {

// ---------------------------------------------------------------------------
// RpcHeader wire format
// ---------------------------------------------------------------------------

void put(BufWriter& w, const RpcHeader& h) {
  put(w, h.rpc_id);
  put(w, h.provider_id);
  put(w, h.op_seq);
  put(w, h.breadcrumb);
  put(w, h.request_id);
  put(w, h.trace_order);
  put(w, h.lamport);
  put(w, h.flags);
  put(w, h.body_size);
}

void get(BufReader& r, RpcHeader& h) {
  get(r, h.rpc_id);
  get(r, h.provider_id);
  get(r, h.op_seq);
  get(r, h.breadcrumb);
  get(r, h.request_id);
  get(r, h.trace_order);
  get(r, h.lamport);
  get(r, h.flags);
  get(r, h.body_size);
}

std::size_t rpc_header_wire_size() noexcept {
  static const std::size_t size = [] {
    BufWriter w;
    put(w, RpcHeader{});
    return w.size();
  }();
  return size;
}

// ---------------------------------------------------------------------------
// Class
// ---------------------------------------------------------------------------

Class::Class(ofi::Fabric& fabric, sim::Process& process, ClassConfig config)
    : fabric_(fabric),
      process_(process),
      config_(config),
      endpoint_(fabric.create_endpoint(process)) {
  register_pvars();
}

void Class::register_pvars() {
  // Table II rows (NO_OBJECT) ------------------------------------------------
  pvars_.add({"num_posted_handles", "Number of currently posted RPC handles",
              PvarClass::kLevel, PvarBind::kNoObject},
             [this](const Handle*) {
               return static_cast<double>(posted_.size());
             });
  pvars_.add({"completion_queue_size",
              "Number of events in the completion callback queue",
              PvarClass::kState, PvarBind::kNoObject},
             [this](const Handle*) {
               return static_cast<double>(callback_queue_.size());
             });
  pvars_.add({"num_ofi_events_read",
              "Number of OFI completion events last read",
              PvarClass::kLevel, PvarBind::kNoObject},
             [this](const Handle*) {
               return static_cast<double>(last_ofi_events_read_);
             });
  pvars_.add({"num_rpcs_invoked", "Number of RPCs invoked by instance",
              PvarClass::kCounter, PvarBind::kNoObject},
             [this](const Handle*) {
               return static_cast<double>(num_rpcs_invoked_);
             });

  // Table II rows (HANDLE-bound timers) --------------------------------------
  pvars_.add({"internal_rdma_transfer_time",
              "Time taken to transfer additional RPC metadata through RDMA",
              PvarClass::kTimer, PvarBind::kHandle},
             [](const Handle* h) { return h->timer(kHtInternalRdma); });
  pvars_.add({"input_serialization_time",
              "Time taken to serialize input on origin", PvarClass::kTimer,
              PvarBind::kHandle},
             [](const Handle* h) { return h->timer(kHtInputSer); });
  pvars_.add({"input_deserialization_time",
              "Time taken to de-serialize input on target", PvarClass::kTimer,
              PvarBind::kHandle},
             [](const Handle* h) { return h->timer(kHtInputDeser); });
  pvars_.add({"output_serialization_time",
              "Time taken to serialize output on target", PvarClass::kTimer,
              PvarBind::kHandle},
             [](const Handle* h) { return h->timer(kHtOutputSer); });
  pvars_.add({"output_deserialization_time",
              "Time taken to de-serialize output on origin", PvarClass::kTimer,
              PvarBind::kHandle},
             [](const Handle* h) { return h->timer(kHtOutputDeser); });
  pvars_.add({"origin_completion_callback_time",
              "Delay between the arrival of RPC response and invocation of "
              "completion callback",
              PvarClass::kTimer, PvarBind::kHandle},
             [](const Handle* h) { return h->timer(kHtOriginCb); });

  // Additional exported metrics exercising the remaining PVAR classes -------
  pvars_.add({"num_rpcs_handled", "Number of RPC requests handled by instance",
              PvarClass::kCounter, PvarBind::kNoObject},
             [this](const Handle*) {
               return static_cast<double>(num_rpcs_handled_);
             });
  // Writable: the eager-vs-RDMA overflow threshold is a control knob. A
  // tool (or the adaptive controller) raises it when too many requests take
  // the internal-RDMA path, through the same session interface it samples
  // from (§VII policy-driven reconfiguration).
  pvars_.add({"eager_buffer_size", "Size of the eager message buffer",
              PvarClass::kSize, PvarBind::kNoObject},
             [this](const Handle*) {
               return static_cast<double>(config_.eager_limit);
             },
             [this](double v) {
               config_.eager_limit =
                   v < 0 ? 0 : static_cast<std::size_t>(v);
             });
  pvars_.add({"eager_overflow_count",
              "Requests whose input overflowed the eager buffer",
              PvarClass::kCounter, PvarBind::kNoObject},
             [this](const Handle*) {
               return static_cast<double>(eager_overflows_);
             });
  pvars_.add({"bulk_bytes_transferred",
              "Total bytes moved through the bulk interface",
              PvarClass::kCounter, PvarBind::kNoObject},
             [this](const Handle*) {
               return static_cast<double>(bulk_bytes_total_);
             });
  pvars_.add({"ofi_cq_high_watermark",
              "Highest observed depth of the OFI completion queue",
              PvarClass::kHighWatermark, PvarBind::kNoObject},
             [this](const Handle*) {
               return static_cast<double>(endpoint_.cq().high_watermark());
             });
  pvars_.add({"callback_queue_high_watermark",
              "Highest observed depth of the completion callback queue",
              PvarClass::kHighWatermark, PvarBind::kNoObject},
             [this](const Handle*) {
               return static_cast<double>(callback_queue_hwm_);
             });
  pvars_.add({"wire_buffer_pool_hits",
              "Wire-buffer sends served from the recycle pool",
              PvarClass::kCounter, PvarBind::kNoObject},
             [this](const Handle*) {
               return static_cast<double>(buffer_pool_hits_);
             });
  pvars_.add({"min_ofi_events_read",
              "Lowest non-trivial OFI event batch read by progress",
              PvarClass::kLowWatermark, PvarBind::kNoObject},
             [this](const Handle*) {
               return min_ofi_events_read_ == ~std::size_t{0}
                          ? 0.0
                          : static_cast<double>(min_ofi_events_read_);
             });
}

RpcId Class::register_rpc(const std::string& name, ArrivalCallback on_arrival) {
  const RpcId id = sim::fnv1a64(name.data(), name.size());
  rpc_names_[id] = name;
  if (on_arrival) {
    if (auto it = rpc_handlers_.find(id); it != rpc_handlers_.end()) {
      // Re-registration overwrites the slot in place: pointers handed out
      // by handle_request_arrival() stay valid and see the new handler.
      arrival_slots_[it->second] = std::move(on_arrival);
    } else {
      arrival_slots_.push_back(std::move(on_arrival));
      rpc_handlers_[id] = arrival_slots_.size() - 1;
    }
  }
  return id;
}

const std::string* Class::rpc_name(RpcId id) const {
  auto it = rpc_names_.find(id);
  return it == rpc_names_.end() ? nullptr : &it->second;
}

HandlePtr Class::create_handle(ofi::EpAddr dest, RpcId rpc,
                               std::uint16_t provider_id) {
  auto h = std::make_shared<Handle>();
  h->header.rpc_id = rpc;
  h->header.provider_id = provider_id;
  h->peer_ = dest;
  return h;
}

sim::DurationNs Class::ser_cost(std::size_t bytes) const noexcept {
  return config_.ser_base +
         static_cast<sim::DurationNs>(std::llround(
             static_cast<double>(bytes) * config_.ser_ns_per_byte));
}

sim::DurationNs Class::deser_cost(std::size_t bytes) const noexcept {
  return config_.deser_base +
         static_cast<sim::DurationNs>(std::llround(
             static_cast<double>(bytes) * config_.deser_ns_per_byte));
}

void Class::charge_compute(sim::DurationNs d) {
  // Outside ULT context (unit tests driving the class directly) the cost is
  // simply skipped: there is no ES to occupy.
  if (abt::self() != nullptr) abt::compute(d);
}

void Class::forward(const HandlePtr& h, std::vector<std::byte> input,
                    CompletionCallback on_complete) {
  assert(!h->target_side_ && "forward() on a target-side handle");
  h->header.op_seq = next_op_seq_++;
  h->header.body_size = input.size();

  // t2 -> t3: input serialization on the origin, charged to the calling ULT
  // and recorded in the HANDLE-bound PVAR.
  const auto cost = ser_cost(input.size());
  h->set_timer(kHtInputSer, static_cast<double>(cost));
  charge_compute(cost);

  h->body = std::move(input);
  posted_[h->header.op_seq] = h;
  completion_cbs_[h->header.op_seq] = std::move(on_complete);
  ++num_rpcs_invoked_;

  // Build the wire message: header + body. If the body exceeds the eager
  // limit only the eager portion is charged to the wire here; the target
  // fetches the remainder with an internal RDMA before dispatch (t3->t4).
  const std::size_t header_size = rpc_header_wire_size();
  std::uint64_t wire_bytes = 0;  // 0 => full size
  if (h->body.size() > config_.eager_limit) {
    h->header.flags |= kFlagEagerOverflow;
    ++eager_overflows_;
    wire_bytes = header_size + config_.eager_limit;
  }

  BufWriter w(acquire_buffer());
  put(w, h->header);
  w.write_raw(h->body.data(), h->body.size());
  endpoint_.post_send(h->peer_, kTagRequest, w.take(), /*context=*/0,
                      wire_bytes, h->attachment);
}

void Class::respond(const HandlePtr& h, std::vector<std::byte> output,
                    SentCallback on_sent) {
  assert(h->target_side_ && "respond() on an origin-side handle");

  // t9 -> t10: output serialization on the target.
  const auto cost = ser_cost(output.size());
  h->set_timer(kHtOutputSer, static_cast<double>(cost));
  charge_compute(cost);

  h->response_body = std::move(output);

  RpcHeader resp = h->header;
  // Only the library-status bits echo back to the origin.
  resp.flags = h->header.flags & (kFlagError | kFlagBusy);
  resp.body_size = h->response_body.size();
  BufWriter w(acquire_buffer());
  put(w, resp);
  w.write_raw(h->response_body.data(), h->response_body.size());

  // Register the sent-completion continuation (t13) before posting.
  const std::uint64_t ctx = next_ctx_++;
  if (on_sent) {
    HandlePtr hp = h;
    SentCallback cb = std::move(on_sent);
    pending_ctx_[ctx] = [this, hp, cb = std::move(cb)](const ofi::CqEntry&) {
      enqueue_callback([hp, cb] { cb(hp); });
    };
  }
  endpoint_.post_send(h->peer_, kTagResponse, w.take(), ctx);
}

void Class::bulk_transfer(const HandlePtr& h, std::uint64_t bytes,
                          std::function<void()> done) {
  bulk_bytes_total_ += bytes;
  const std::uint64_t ctx = next_ctx_++;
  pending_ctx_[ctx] = [this, done = std::move(done)](const ofi::CqEntry&) {
    enqueue_callback(done);
  };
  endpoint_.post_rdma(h->peer_, bytes, ctx);
}

bool Class::cancel(const HandlePtr& h) {
  const auto seq = h->header.op_seq;
  const bool was_posted = posted_.erase(seq) > 0;
  completion_cbs_.erase(seq);
  if (was_posted) ++cancellations_;
  return was_posted;
}

void Class::charge_output_deserialize(const HandlePtr& h) {
  const auto cost = deser_cost(h->response_body.size());
  h->set_timer(kHtOutputDeser, static_cast<double>(cost));
  charge_compute(cost);
}

void Class::charge_input_deserialize(const HandlePtr& h) {
  // t6 -> t7: input deserialization, charged in the handler ULT.
  const auto cost = deser_cost(h->body.size());
  h->set_timer(kHtInputDeser, static_cast<double>(cost));
  charge_compute(cost);
}

std::vector<std::byte> Class::acquire_buffer() {
  if (!buffer_pool_.empty()) {
    std::vector<std::byte> buf = std::move(buffer_pool_.back());
    buffer_pool_.pop_back();
    ++buffer_pool_hits_;
    return buf;
  }
  ++buffer_pool_misses_;
  return {};
}

void Class::recycle_buffer(std::vector<std::byte>&& buf) {
  if (config_.buffer_pool_limit == 0 || buf.capacity() == 0 ||
      buffer_pool_.size() >= config_.buffer_pool_limit) {
    return;  // pooling disabled, nothing worth keeping, or pool full
  }
  buffer_pool_.push_back(std::move(buf));
}

void Class::enqueue_callback(std::function<void()> fn) {
  callback_queue_.push_back(QueuedCallback{std::move(fn)});
  if (callback_queue_.size() > callback_queue_hwm_) {
    callback_queue_hwm_ = callback_queue_.size();
  }
}

void Class::handle_request_arrival(ofi::CqEntry&& entry) {
  BufReader r(entry.data);
  auto h = std::make_shared<Handle>();
  get(r, h->header);
  h->target_side_ = true;
  h->peer_ = entry.peer;
  h->received_at_ = engine().now();  // t3
  h->body.assign(entry.data.begin() +
                     static_cast<std::ptrdiff_t>(r.position()),
                 entry.data.end());
  h->attachment = std::move(entry.attachment);
  // The header and body were copied out above; the wire buffer's storage
  // goes back to the pool for the next send.
  recycle_buffer(std::move(entry.data));
  ++num_rpcs_handled_;

  auto it = rpc_handlers_.find(h->header.rpc_id);
  if (it == rpc_handlers_.end()) return;  // unknown RPC: drop
  // Borrow the handler through its stable slot: deque storage never moves
  // on growth and re-registration overwrites in place, so the pointer stays
  // valid across map mutations — no per-request copy of the std::function.
  const ArrivalCallback* arrival = &arrival_slots_[it->second];

  if ((h->header.flags & kFlagEagerOverflow) != 0) {
    // t3 -> t4: fetch the overflowing request metadata via internal RDMA,
    // then dispatch. The elapsed time lands in the HANDLE-bound PVAR.
    const std::uint64_t remaining =
        h->header.body_size > config_.eager_limit
            ? h->header.body_size - config_.eager_limit
            : 0;
    const std::uint64_t ctx = next_ctx_++;
    const sim::TimeNs started = engine().now();
    pending_ctx_[ctx] = [this, h, arrival, started](const ofi::CqEntry&) {
      h->set_timer(kHtInternalRdma,
                   static_cast<double>(engine().now() - started));
      (*arrival)(h);
    };
    endpoint_.post_rdma(h->peer_, remaining, ctx);
  } else {
    (*arrival)(h);
  }
}

void Class::handle_response_arrival(ofi::CqEntry&& entry) {
  BufReader r(entry.data);
  RpcHeader resp;
  get(r, resp);
  auto it = posted_.find(resp.op_seq);
  if (it == posted_.end()) return;  // stale/duplicate
  HandlePtr h = it->second;
  posted_.erase(it);
  h->response_body.assign(entry.data.begin() +
                              static_cast<std::ptrdiff_t>(r.position()),
                          entry.data.end());
  recycle_buffer(std::move(entry.data));
  h->response_queued_at_ = engine().now();  // t12
  // Carry the responder's Lamport clock back to the origin so the tracing
  // layer can apply the receive-side max+1 update, and surface the
  // library-level error/busy flags if the target set them.
  h->header.lamport = resp.lamport;
  h->header.flags |= (resp.flags & (kFlagError | kFlagBusy));

  auto cbit = completion_cbs_.find(resp.op_seq);
  if (cbit == completion_cbs_.end()) return;
  CompletionCallback cb = std::move(cbit->second);
  completion_cbs_.erase(cbit);
  enqueue_callback([this, h, cb = std::move(cb)] {
    // t12 -> t14: origin completion-callback delay.
    h->set_timer(kHtOriginCb,
                 static_cast<double>(engine().now() - h->response_queued_at_));
    cb(h);
  });
}

std::size_t Class::progress() {
  std::vector<ofi::CqEntry> events;
  const std::size_t n = endpoint_.cq().read(events, config_.max_events);
  last_ofi_events_read_ = n;
  if (n > 0 && n < min_ofi_events_read_) min_ofi_events_read_ = n;
  if (n == 0) return 0;

  charge_compute(config_.progress_base_cost +
                 static_cast<sim::DurationNs>(n) *
                     config_.progress_per_event_cost);

  for (auto& ev : events) {
    switch (ev.kind) {
      case ofi::CqKind::kRecv:
        if (ev.tag == kTagRequest) {
          handle_request_arrival(std::move(ev));
        } else if (ev.tag == kTagResponse) {
          handle_response_arrival(std::move(ev));
        }
        break;
      case ofi::CqKind::kSendComplete:
      case ofi::CqKind::kRdmaComplete: {
        auto it = pending_ctx_.find(ev.context);
        if (it != pending_ctx_.end()) {
          auto fn = std::move(it->second);
          pending_ctx_.erase(it);
          fn(ev);
        }
        break;
      }
    }
  }
  return n;
}

std::size_t Class::trigger(std::size_t max) {
  std::size_t ran = 0;
  while (ran < max && !callback_queue_.empty()) {
    QueuedCallback item = std::move(callback_queue_.front());
    callback_queue_.pop_front();
    charge_compute(config_.trigger_dispatch_cost);
    item.fn();
    ++ran;
  }
  return ran;
}

bool Class::wait_for_events(sim::DurationNs timeout) {
  return endpoint_.cq().wait_nonempty(timeout);
}

}  // namespace sym::hg
