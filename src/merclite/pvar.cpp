#include "merclite/pvar.hpp"

#include <cassert>
#include <stdexcept>

namespace sym::hg {

const char* to_string(PvarClass c) noexcept {
  switch (c) {
    case PvarClass::kState: return "STATE";
    case PvarClass::kCounter: return "COUNTER";
    case PvarClass::kTimer: return "TIMER";
    case PvarClass::kLevel: return "LEVEL";
    case PvarClass::kSize: return "SIZE";
    case PvarClass::kHighWatermark: return "HIGHWATERMARK";
    case PvarClass::kLowWatermark: return "LOWWATERMARK";
  }
  return "UNKNOWN";
}

const char* to_string(PvarBind b) noexcept {
  switch (b) {
    case PvarBind::kNoObject: return "NO_OBJECT";
    case PvarBind::kHandle: return "HANDLE";
  }
  return "UNKNOWN";
}

int PvarRegistry::add(PvarInfo info, PvarReader reader) {
  assert(reader && "PVAR requires a reader");
  info.writable = false;
  vars_.push_back(Entry{std::move(info), std::move(reader), nullptr});
  return static_cast<int>(vars_.size()) - 1;
}

int PvarRegistry::add(PvarInfo info, PvarReader reader, PvarWriter writer) {
  assert(reader && "PVAR requires a reader");
  assert(writer && "writable PVAR requires a writer");
  info.writable = true;
  vars_.push_back(
      Entry{std::move(info), std::move(reader), std::move(writer)});
  return static_cast<int>(vars_.size()) - 1;
}

void PvarRegistry::write(int index, double value) {
  auto& entry = vars_.at(static_cast<std::size_t>(index));
  if (!entry.writer) {
    throw std::logic_error("PvarRegistry: PVAR '" + entry.info.name +
                           "' is read-only");
  }
  entry.writer(value);
}

int PvarRegistry::find(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].info.name == name) return static_cast<int>(i);
  }
  return -1;
}

PvarHandle PvarSession::alloc(int index) {
  if (registry_ == nullptr) {
    throw std::logic_error("PvarSession: alloc after finalize");
  }
  if (index < 0 || index >= registry_->count()) {
    throw std::out_of_range("PvarSession: bad PVAR index");
  }
  ++allocated_;
  return PvarHandle{index, registry_->info(index).bind};
}

PvarHandle PvarSession::alloc(const std::string& name) {
  if (registry_ == nullptr) {
    throw std::logic_error("PvarSession: alloc after finalize");
  }
  const int idx = registry_->find(name);
  if (idx < 0) return PvarHandle{};
  ++allocated_;
  return PvarHandle{idx, registry_->info(idx).bind};
}

double PvarSession::read(PvarHandle h, const Handle* obj) const {
  if (registry_ == nullptr) {
    throw std::logic_error("PvarSession: read after finalize");
  }
  if (!h.valid()) throw std::invalid_argument("PvarSession: invalid handle");
  // The binding cached in the handle at alloc time replaces a per-sample
  // PvarInfo lookup — sampling is on the measurement hot path.
  if (h.bind == PvarBind::kHandle && obj == nullptr) {
    throw std::invalid_argument(
        "PvarSession: HANDLE-bound PVAR requires an hg handle");
  }
  return registry_->read(h.index, obj);
}

void PvarSession::write(PvarHandle h, double value) {
  if (registry_ == nullptr) {
    throw std::logic_error("PvarSession: write after finalize");
  }
  if (!h.valid()) throw std::invalid_argument("PvarSession: invalid handle");
  registry_->write(h.index, value);
}

}  // namespace sym::hg

