// argolite/runtime.hpp
//
// Per-process argolite runtime: owns pools, xstreams and live ULTs, and
// exposes the introspection counters (blocked / runnable ULTs) that
// SYMBIOSYS samples when generating trace events.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "argolite/pool.hpp"
#include "argolite/types.hpp"
#include "argolite/ult.hpp"
#include "argolite/xstream.hpp"
#include "simkit/cluster.hpp"
#include "simkit/engine.hpp"

namespace sym::abt {

class Runtime {
 public:
  Runtime(sim::Engine& engine, sim::Process& process);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] sim::Process& process() noexcept { return process_; }

  Pool& create_pool(std::string name);
  Xstream& create_xstream(std::vector<Pool*> pools);

  /// Spawn a ULT into `pool`. The ULT begins life kReady; it is destroyed
  /// automatically when its body returns.
  Ult& create_ult(Pool& pool, std::function<void()> body);

  /// ULT-local key registry (global across runtimes, like Argobots keys).
  static KeyId key_create();

  [[nodiscard]] std::size_t pool_count() const noexcept {
    return pools_.size();
  }
  [[nodiscard]] std::size_t xstream_count() const noexcept {
    return xstreams_.size();
  }
  [[nodiscard]] Pool& pool(std::size_t i) { return *pools_.at(i); }
  [[nodiscard]] Xstream& xstream(std::size_t i) { return *xstreams_.at(i); }

  /// Introspection across all pools (the paper samples these from Argobots).
  [[nodiscard]] std::uint64_t total_blocked() const noexcept;
  [[nodiscard]] std::uint64_t total_runnable() const noexcept;
  [[nodiscard]] std::uint64_t ults_created() const noexcept {
    return ults_created_;
  }
  [[nodiscard]] std::uint64_t ults_finished() const noexcept {
    return ults_finished_;
  }
  [[nodiscard]] std::uint64_t live_ults() const noexcept {
    return ults_created_ - ults_finished_;
  }

 private:
  friend class Xstream;

  void destroy_ult(Ult& ult);

  sim::Engine& engine_;
  sim::Process& process_;
  std::vector<std::unique_ptr<Pool>> pools_;
  std::vector<std::unique_ptr<Xstream>> xstreams_;
  std::uint64_t next_ult_id_ = 1;
  std::uint64_t ults_created_ = 0;
  std::uint64_t ults_finished_ = 0;
};

// ---------------------------------------------------------------------------
// Calls available from inside ULT code ("this ULT" operations).
// ---------------------------------------------------------------------------

/// The ULT currently running on this thread (nullptr outside ULT context).
[[nodiscard]] Ult* self() noexcept;

/// Cooperatively requeue the calling ULT and let the ES pick other work.
void yield();

/// Occupy the calling ULT's ES for `d` of virtual time (models CPU work).
void compute(sim::DurationNs d);

/// Suspend without occupying the ES for `d` of virtual time.
void sleep_for(sim::DurationNs d);

/// ULT-local storage convenience wrappers for the calling ULT.
void self_set(KeyId key, std::uint64_t value);
[[nodiscard]] std::uint64_t self_get(KeyId key) noexcept;

/// Low-level blocking primitive: mark the calling ULT blocked (accounted on
/// its pool) and suspend it. Library code (sync primitives, the network
/// layer) later resumes it via Pool::wake_blocked().
void block_self();

}  // namespace sym::abt
