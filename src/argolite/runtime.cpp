#include "argolite/runtime.hpp"

#include <atomic>
#include <cassert>
#include <utility>

namespace sym::abt {

// ---------------------------------------------------------------------------
// Ult
// ---------------------------------------------------------------------------

Ult::Ult(Id id, Pool& pool, std::function<void()> body)
    : id_(id),
      pool_(&pool),
      fiber_(std::make_unique<sim::Fiber>(std::move(body))) {}

void Ult::local_set(KeyId key, std::uint64_t value) {
  if (locals_.size() <= key) locals_.resize(key + 1, 0);
  locals_[key] = value;
}

std::uint64_t Ult::local_get(KeyId key) const noexcept {
  return key < locals_.size() ? locals_[key] : 0;
}

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

void Pool::push(Ult& ult) {
  assert(ult.state_ == UltState::kReady);
  ready_.push_back(&ult);
  if (ready_.size() > ready_hwm_) ready_hwm_ = ready_.size();
  ++total_pushed_;
  // Wake every idle consumer; each one self-guards against duplicate
  // dispatch scheduling, and an occupied ES re-checks its pools after the
  // current ULT releases it.
  for (Xstream* xs : consumers_) {
    if (!xs->busy()) xs->notify_work();
  }
}

Ult* Pool::pop() {
  if (ready_.empty()) return nullptr;
  Ult* u = ready_.front();
  ready_.pop_front();
  return u;
}

void Pool::wake_blocked(Ult& ult) {
  assert(ult.state_ == UltState::kBlocked);
  on_unblocked();
  ult.state_ = UltState::kReady;
  push(ult);
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(sim::Engine& engine, sim::Process& process)
    : engine_(engine), process_(process) {}

Runtime::~Runtime() = default;

Pool& Runtime::create_pool(std::string name) {
  pools_.push_back(std::make_unique<Pool>(*this, std::move(name)));
  return *pools_.back();
}

Xstream& Runtime::create_xstream(std::vector<Pool*> pools) {
  const auto rank = static_cast<std::uint32_t>(xstreams_.size());
  xstreams_.push_back(std::make_unique<Xstream>(*this, rank, pools));
  Xstream& xs = *xstreams_.back();
  for (Pool* p : pools) p->attach(xs);
  // Work may already be queued.
  xs.notify_work();
  return xs;
}

Ult& Runtime::create_ult(Pool& pool, std::function<void()> body) {
  ++ults_created_;
  // symlint: allow(may-allocate) reason=ULT construction is control-plane
  // work counted in ults_created_; dispatch loops reuse live ULTs
  auto* ult = new Ult(next_ult_id_++, pool, std::move(body));
  ult->set_created_at(engine_.now());
  pool.push(*ult);
  return *ult;
}

void Runtime::destroy_ult(Ult& ult) {
  assert(ult.finished());
  ++ults_finished_;
  delete &ult;
}

KeyId Runtime::key_create() {
  // symlint: allow(shared-state-escape) reason=monotonic atomic key counter; ids are opaque handles and never ordered on, so allocation order cannot leak into results
  static std::atomic<KeyId> next{0};
  return next++;
}

std::uint64_t Runtime::total_blocked() const noexcept {
  std::uint64_t n = 0;
  for (const auto& p : pools_) n += p->blocked_count();
  return n;
}

std::uint64_t Runtime::total_runnable() const noexcept {
  std::uint64_t n = 0;
  for (const auto& p : pools_) n += p->ready_count();
  return n;
}

// ---------------------------------------------------------------------------
// this-ULT operations
// ---------------------------------------------------------------------------

Ult* self() noexcept { return Xstream::current_ult(); }

void yield() {
  Ult* u = self();
  assert(u != nullptr && "yield() outside ULT context");
  u->state_ = UltState::kReady;  // postprocess() requeues it
  sim::Fiber::switch_out();
}

void compute(sim::DurationNs d) {
  Ult* u = self();
  Xstream* xs = Xstream::current();
  assert(u != nullptr && xs != nullptr && "compute() outside ULT context");
  xs->begin_compute(d, *u);
  sim::Fiber::switch_out();
}

void sleep_for(sim::DurationNs d) {
  Ult* u = self();
  Xstream* xs = Xstream::current();
  assert(u != nullptr && xs != nullptr && "sleep_for() outside ULT context");
  Pool& pool = u->pool();
  u->state_ = UltState::kBlocked;
  pool.on_blocked();
  xs->runtime().engine().after(d, [&pool, u] { pool.wake_blocked(*u); });
  sim::Fiber::switch_out();
}

void self_set(KeyId key, std::uint64_t value) {
  Ult* u = self();
  assert(u != nullptr);
  u->local_set(key, value);
}

std::uint64_t self_get(KeyId key) noexcept {
  Ult* u = self();
  return u != nullptr ? u->local_get(key) : 0;
}

void block_self() {
  Ult* u = self();
  assert(u != nullptr && "block_self() outside ULT context");
  u->state_ = UltState::kBlocked;
  u->pool().on_blocked();
  sim::Fiber::switch_out();
}

}  // namespace sym::abt
