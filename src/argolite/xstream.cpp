#include "argolite/xstream.hpp"

#include <cassert>

#include "argolite/pool.hpp"
#include "argolite/runtime.hpp"
#include "argolite/ult.hpp"
#include "simkit/engine.hpp"

namespace sym::abt {
namespace {

// symlint: allow(shared-state-escape) reason=per-OS-thread scheduler cursor; written only by the owning worker thread, never shared across workers
thread_local Xstream* g_current_xstream = nullptr;
// symlint: allow(shared-state-escape) reason=per-OS-thread ULT cursor; same single-writer discipline as g_current_xstream
thread_local Ult* g_current_ult = nullptr;

}  // namespace

Xstream::Xstream(Runtime& runtime, std::uint32_t rank, std::vector<Pool*> pools)
    : runtime_(runtime), rank_(rank), pools_(std::move(pools)) {}

Xstream* Xstream::current() noexcept { return g_current_xstream; }
Ult* Xstream::current_ult() noexcept { return g_current_ult; }

void Xstream::notify_work() { try_dispatch(); }

void Xstream::set_enabled(bool on) {
  if (enabled_ == on) return;
  enabled_ = on;
  if (on) try_dispatch();
}

void Xstream::try_dispatch() {
  if (!enabled_ || busy_ || dispatch_scheduled_) return;
  bool have_work = false;
  for (Pool* p : pools_) {
    if (p->ready_count() > 0) {
      have_work = true;
      break;
    }
  }
  if (!have_work) return;
  dispatch_scheduled_ = true;
  // The dispatch overhead both models scheduler cost and guarantees virtual
  // time cannot stand still across an unbounded chain of dispatches. The
  // event is pinned to the lane owning this runtime's node so that ULTs
  // always execute on their home lane — in particular when the dispatch is
  // triggered from setup code running outside any lane.
  auto& engine = runtime_.engine();
  engine.after_on(engine.lane_for_node(runtime_.process().node()),
                  kDispatchOverheadNs, [this] {
                    dispatch_scheduled_ = false;
                    dispatch_one();
                  });
}

Ult* Xstream::pop_ready() {
  for (Pool* p : pools_) {
    if (Ult* u = p->pop(); u != nullptr) return u;
  }
  return nullptr;
}

void Xstream::dispatch_one() {
  if (!enabled_ || busy_) return;  // parked or grabbed meanwhile
  Ult* u = pop_ready();
  if (u == nullptr) return;
  ++dispatched_;
  run_ult(*u);
  try_dispatch();
}

void Xstream::run_ult(Ult& ult) {
  assert(!busy_);
  assert(ult.state_ == UltState::kReady);
  ult.state_ = UltState::kRunning;
  if (!ult.ever_ran_) {
    ult.ever_ran_ = true;
    ult.first_run_at_ = runtime_.engine().now();
  }
  ult.pool().on_run_begin();

  Xstream* prev_xs = g_current_xstream;
  Ult* prev_ult = g_current_ult;
  g_current_xstream = this;
  g_current_ult = &ult;
  ult.fiber_->switch_in();
  g_current_xstream = prev_xs;
  g_current_ult = prev_ult;

  ult.pool().on_run_end();
  if (ult.fiber_->finished()) ult.state_ = UltState::kFinished;
  postprocess(ult);
}

void Xstream::postprocess(Ult& ult) {
  switch (ult.state_) {
    case UltState::kFinished:
      runtime_.destroy_ult(ult);
      break;
    case UltState::kReady:
      // yield(): requeue at the back of its pool.
      ult.pool().push(ult);
      break;
    case UltState::kComputing:
      // begin_compute() left this ES busy and scheduled the resume event.
      break;
    case UltState::kBlocked:
      // A sync object / the network owns the wakeup.
      break;
    case UltState::kRunning:
      assert(false && "ULT suspended while still marked running");
      break;
  }
}

void Xstream::begin_compute(sim::DurationNs d, Ult& ult) {
  assert(g_current_ult == &ult && g_current_xstream == this);
  assert(!busy_);
  busy_ = true;
  busy_time_ += d;
  runtime_.process().add_cpu_time(d);
  ult.state_ = UltState::kComputing;
  runtime_.engine().after(d, [this, &ult] {
    busy_ = false;
    resume_here(ult);
  });
}

void Xstream::resume_here(Ult& ult) {
  assert(ult.state_ == UltState::kComputing);
  assert(!busy_);
  ult.state_ = UltState::kReady;  // run_ult() expects kReady
  run_ult(ult);
  try_dispatch();
}

}  // namespace sym::abt
