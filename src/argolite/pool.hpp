// argolite/pool.hpp
//
// A pool is a FIFO queue of ready ULTs plus the blocked/runnable accounting
// that SYMBIOSYS samples into trace events (the paper's Fig. 10 plots the
// number of blocked ULTs sampled from Argobots at request start).
//
// Pools optionally carry an advisory capacity: admission-control layers
// (margolite's adaptive controller) consult at_capacity() *before* spawning
// a ULT and early-reject the request instead. push() itself never drops
// work — internal wakeups (sync primitives, the network layer) must always
// land.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "argolite/types.hpp"

namespace sym::abt {

class Pool {
 public:
  Pool(Runtime& runtime, std::string name)
      : runtime_(runtime), name_(std::move(name)) {}
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Enqueue a ready ULT and poke an idle attached xstream.
  void push(Ult& ult);

  /// Dequeue the next ready ULT, or nullptr if empty.
  [[nodiscard]] Ult* pop();

  /// Transition a kBlocked ULT back to kReady and enqueue it. This is the
  /// counterpart of abt::block_self() used by sync primitives and the
  /// network layer.
  void wake_blocked(Ult& ult);

  [[nodiscard]] std::size_t ready_count() const noexcept {
    return ready_.size();
  }
  /// Highest ready-queue depth ever observed (backlog watermark for the
  /// adaptive controller).
  [[nodiscard]] std::size_t ready_high_watermark() const noexcept {
    return ready_hwm_;
  }

  /// Advisory bound on the ready queue (0 = unbounded). Enforced by
  /// admission-control callers via at_capacity(), not by push().
  void set_capacity(std::size_t cap) noexcept { capacity_ = cap; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool at_capacity() const noexcept {
    return capacity_ > 0 && ready_.size() >= capacity_;
  }
  [[nodiscard]] std::uint64_t blocked_count() const noexcept {
    return blocked_;
  }
  [[nodiscard]] std::uint64_t running_count() const noexcept {
    return running_;
  }
  [[nodiscard]] std::uint64_t total_pushed() const noexcept {
    return total_pushed_;
  }

  /// Accounting hooks used by sync primitives and xstreams.
  void on_blocked() noexcept { ++blocked_; }
  void on_unblocked() noexcept { --blocked_; }
  void on_run_begin() noexcept { ++running_; }
  void on_run_end() noexcept { --running_; }

  /// Xstreams consuming from this pool register themselves so push() can
  /// wake an idle one.
  void attach(Xstream& xs) { consumers_.push_back(&xs); }

  [[nodiscard]] Runtime& runtime() noexcept { return runtime_; }

 private:
  Runtime& runtime_;
  std::string name_;
  std::deque<Ult*> ready_;
  std::vector<Xstream*> consumers_;
  std::size_t ready_hwm_ = 0;
  std::size_t capacity_ = 0;
  std::uint64_t blocked_ = 0;
  std::uint64_t running_ = 0;
  std::uint64_t total_pushed_ = 0;
};

}  // namespace sym::abt
