#include "argolite/sync.hpp"

#include <cassert>

#include "argolite/pool.hpp"
#include "argolite/runtime.hpp"
#include "argolite/ult.hpp"

namespace sym::abt {
namespace {

void wake(Ult* u) { u->pool().wake_blocked(*u); }

}  // namespace

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

void Mutex::lock() {
  if (!locked_) {
    locked_ = true;
    return;
  }
  Ult* u = self();
  assert(u != nullptr && "Mutex::lock() outside ULT context");
  ++contended_;
  waiters_.push_back(u);
  block_self();
  // Woken by unlock(): ownership was handed to us; locked_ remains true.
  assert(locked_);
}

bool Mutex::try_lock() {
  if (locked_) return false;
  locked_ = true;
  return true;
}

void Mutex::unlock() {
  assert(locked_ && "unlock of an unlocked Mutex");
  if (waiters_.empty()) {
    locked_ = false;
    return;
  }
  // FIFO handoff: the lock stays held and transfers to the oldest waiter.
  Ult* next = waiters_.front();
  waiters_.pop_front();
  wake(next);
}

// ---------------------------------------------------------------------------
// Eventual
// ---------------------------------------------------------------------------

void Eventual::wait() {
  if (set_) return;
  Ult* u = self();
  assert(u != nullptr && "Eventual::wait() outside ULT context");
  waiters_.push_back(u);
  block_self();
  assert(set_);
}

void Eventual::set() {
  if (set_) return;
  set_ = true;
  auto woken = std::move(waiters_);
  waiters_.clear();
  for (Ult* u : woken) wake(u);
}

void Eventual::reset() {
  assert(waiters_.empty() && "reset() with pending waiters");
  set_ = false;
}

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

void CondVar::wait(Mutex& m) {
  Ult* u = self();
  assert(u != nullptr && "CondVar::wait() outside ULT context");
  waiters_.push_back(u);
  m.unlock();
  block_self();
  m.lock();
}

void CondVar::signal() {
  if (waiters_.empty()) return;
  Ult* u = waiters_.front();
  waiters_.pop_front();
  wake(u);
}

void CondVar::broadcast() {
  auto woken = std::move(waiters_);
  waiters_.clear();
  for (Ult* u : woken) wake(u);
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

void Barrier::wait() {
  ++arrived_;
  if (arrived_ < count_) {
    Ult* u = self();
    assert(u != nullptr && "Barrier::wait() outside ULT context");
    waiters_.push_back(u);
    block_self();
    return;
  }
  // Last arrival: release the cohort and re-arm for cyclic use.
  arrived_ = 0;
  auto woken = std::move(waiters_);
  waiters_.clear();
  for (Ult* u : woken) wake(u);
}

}  // namespace sym::abt
