// argolite/ult.hpp
//
// User-level threads. A ULT wraps a simkit fiber: its body is real C++ code
// that cooperatively suspends whenever it performs a simulated operation
// (compute, sleep, lock, network wait). ULT-local storage keys carry the
// SYMBIOSYS callpath breadcrumb and timing state across the RPC stack, as in
// the paper's "ULT-local key" instrumentation strategy (Table III).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "argolite/types.hpp"
#include "simkit/fiber.hpp"
#include "simkit/time.hpp"

namespace sym::abt {

class Ult {
 public:
  using Id = std::uint64_t;

  Ult(Id id, Pool& pool, std::function<void()> body);
  Ult(const Ult&) = delete;
  Ult& operator=(const Ult&) = delete;

  [[nodiscard]] Id id() const noexcept { return id_; }
  [[nodiscard]] UltState state() const noexcept { return state_; }
  [[nodiscard]] Pool& pool() noexcept { return *pool_; }
  [[nodiscard]] bool finished() const noexcept {
    return state_ == UltState::kFinished;
  }

  /// ULT-local storage (64-bit slots, keyed by KeyId).
  void local_set(KeyId key, std::uint64_t value);
  [[nodiscard]] std::uint64_t local_get(KeyId key) const noexcept;

  /// Creation timestamp (virtual): the paper's t4 for handler ULTs.
  [[nodiscard]] sim::TimeNs created_at() const noexcept { return created_at_; }
  void set_created_at(sim::TimeNs t) noexcept { created_at_ = t; }

  /// First-dispatch timestamp (virtual): the paper's t5 for handler ULTs.
  [[nodiscard]] sim::TimeNs first_run_at() const noexcept {
    return first_run_at_;
  }

 private:
  friend class Xstream;
  friend class Pool;
  friend class Runtime;
  friend class Mutex;
  friend class Eventual;
  friend class CondVar;
  friend class Barrier;
  friend void yield();
  friend void compute(sim::DurationNs);
  friend void sleep_for(sim::DurationNs);
  friend void block_self();

  Id id_;
  Pool* pool_;
  UltState state_ = UltState::kReady;
  std::unique_ptr<sim::Fiber> fiber_;
  std::vector<std::uint64_t> locals_;
  sim::TimeNs created_at_ = 0;
  sim::TimeNs first_run_at_ = 0;
  bool ever_ran_ = false;
};

}  // namespace sym::abt
