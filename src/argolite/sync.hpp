// argolite/sync.hpp
//
// ULT-level synchronization primitives (mirroring ABT_mutex, ABT_eventual,
// ABT_cond, ABT_barrier). Waiting always goes through abt::block_self(), so
// blocked ULTs are visible in pool accounting — the paper's Fig. 10 depends
// on being able to sample how many ULTs sit blocked on a backend resource.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "argolite/types.hpp"

namespace sym::abt {

/// FIFO-fair mutual exclusion. unlock() hands ownership to the oldest
/// waiter, which prevents starvation under the bursty RPC floods studied in
/// the HEPnOS "too many databases" experiment.
class Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock();
  [[nodiscard]] bool try_lock();
  void unlock();

  [[nodiscard]] bool locked() const noexcept { return locked_; }
  [[nodiscard]] std::size_t waiters() const noexcept {
    return waiters_.size();
  }
  /// Total number of lock acquisitions that had to wait (contention metric).
  [[nodiscard]] std::uint64_t contended_acquires() const noexcept {
    return contended_;
  }

 private:
  bool locked_ = false;
  std::deque<Ult*> waiters_;
  std::uint64_t contended_ = 0;
};

/// RAII guard for Mutex.
class LockGuard {
 public:
  explicit LockGuard(Mutex& m) : m_(m) { m_.lock(); }
  ~LockGuard() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// One-shot completion event (ABT_eventual). margo_forward() blocks the
/// calling ULT on an Eventual that the Mercury completion callback sets.
class Eventual {
 public:
  Eventual() = default;
  Eventual(const Eventual&) = delete;
  Eventual& operator=(const Eventual&) = delete;

  /// Block until set() has been called (returns immediately if already set).
  void wait();

  /// Mark complete and wake all waiters. Idempotent.
  void set();

  [[nodiscard]] bool is_set() const noexcept { return set_; }

  /// Re-arm for reuse. Only valid with no waiters.
  void reset();

 private:
  bool set_ = false;
  std::vector<Ult*> waiters_;
};

/// Condition variable over a Mutex.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `m`, wait for a signal, and reacquire `m`.
  void wait(Mutex& m);
  void signal();
  void broadcast();

  [[nodiscard]] std::size_t waiters() const noexcept {
    return waiters_.size();
  }

 private:
  std::deque<Ult*> waiters_;
};

/// Rendezvous barrier for `count` ULTs.
class Barrier {
 public:
  explicit Barrier(std::uint32_t count) : count_(count) {}
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Block until `count` ULTs have arrived; the last arrival wakes everyone.
  void wait();

 private:
  std::uint32_t count_;
  std::uint32_t arrived_ = 0;
  std::vector<Ult*> waiters_;
};

}  // namespace sym::abt
