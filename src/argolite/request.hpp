// argolite/request.hpp
//
// Lightweight request records: the scale companion to ULTs. An argolite ULT
// carries a full fiber stack (128 KiB) — perfect for service handler code,
// hopeless for simulating millions of concurrent client requests. A
// RequestRec is a 48-byte POD slot in a lane-owned RequestArena: requests
// queue through an intrusive FIFO link instead of blocking a fiber, and the
// arena recycles slots through a generation-tagged freelist exactly like the
// simkit event arena, so a steady-state open-loop run creates no per-request
// heap traffic after the table reaches its high-water mark.
//
// Ownership rule (same as every lane-adjacent structure): an arena belongs
// to the lane that owns the server it models; only events executing on that
// lane may acquire, link, or release its records.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "simkit/time.hpp"

namespace sym::abt {

/// One in-flight simulated request. POD by design: records are recycled in
/// place and never own heap state.
struct RequestRec {
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  std::uint64_t id = 0;            ///< globally unique (lane << 40 | seq)
  std::uint64_t bytes = 0;         ///< payload size drawn by the generator
  sim::TimeNs arrival = 0;         ///< when the server received it
  sim::TimeNs service_start = 0;   ///< when it left the queue
  std::uint32_t next = kNil;       ///< intrusive FIFO link (arena index)
  std::uint16_t op = 0;            ///< scenario op-class index
  std::uint16_t generation = 1;    ///< stale-handle guard, bumped on release
};

/// Arena of RequestRec slots with an intrusive freelist. Mirrors the simkit
/// LaneArena discipline (acquire from freelist, release bumps the
/// generation) at request granularity; the counters make steady-state
/// recycling testable — two identical phases must show zero net slot growth.
class RequestArena {
 public:
  std::uint32_t acquire() {
    std::uint32_t idx;
    if (free_head_ != RequestRec::kNil) {
      idx = free_head_;
      free_head_ = recs_[idx].next;
      ++recycled_;
    } else {
      idx = static_cast<std::uint32_t>(recs_.size());
      if (recs_.size() == recs_.capacity()) ++growths_;
      recs_.emplace_back();
    }
    RequestRec& r = recs_[idx];
    r.next = RequestRec::kNil;
    ++live_;
    return idx;
  }

  void release(std::uint32_t idx) noexcept {
    assert(live_ > 0);
    RequestRec& r = recs_[idx];
    ++r.generation;
    r.next = free_head_;
    free_head_ = idx;
    --live_;
  }

  [[nodiscard]] RequestRec& rec(std::uint32_t idx) noexcept {
    return recs_[idx];
  }
  [[nodiscard]] const RequestRec& rec(std::uint32_t idx) const noexcept {
    return recs_[idx];
  }

  /// Slots ever created (live + freelisted): the arena's high-water mark.
  [[nodiscard]] std::uint32_t slot_count() const noexcept {
    return static_cast<std::uint32_t>(recs_.size());
  }
  [[nodiscard]] std::uint32_t live() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t recycled() const noexcept { return recycled_; }
  /// Vector reallocations of the slot table (0 in steady state).
  [[nodiscard]] std::uint64_t growths() const noexcept { return growths_; }

  void reserve(std::uint32_t n) { recs_.reserve(n); }

 private:
  std::vector<RequestRec> recs_;
  std::uint32_t free_head_ = RequestRec::kNil;
  std::uint32_t live_ = 0;
  std::uint64_t recycled_ = 0;
  std::uint64_t growths_ = 0;
};

}  // namespace sym::abt
