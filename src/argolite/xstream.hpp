// argolite/xstream.hpp
//
// An execution stream ("xstream" / ES): the simulated hardware resource that
// runs ULTs. An ES consumes ULTs from its attached pools in order; while a
// ULT holds the ES (running or computing) no other ULT can be dispatched on
// it. This occupancy model is what makes the paper's "target ULT handler
// time" (t4 -> t5 wait in the handler pool) emerge when a service is
// configured with too few ESs (HEPnOS configuration C1, Fig. 9).
#pragma once

#include <cstdint>
#include <vector>

#include "argolite/types.hpp"
#include "simkit/time.hpp"

namespace sym::sim {
class Engine;
class Process;
}  // namespace sym::sim

namespace sym::abt {

class Xstream {
 public:
  Xstream(Runtime& runtime, std::uint32_t rank, std::vector<Pool*> pools);
  Xstream(const Xstream&) = delete;
  Xstream& operator=(const Xstream&) = delete;

  [[nodiscard]] std::uint32_t rank() const noexcept { return rank_; }
  [[nodiscard]] bool busy() const noexcept { return busy_; }
  [[nodiscard]] Runtime& runtime() noexcept { return runtime_; }

  /// Dynamically park / unpark this ES (pool autoscaling). A disabled ES
  /// stops pulling new ULTs from its pools; a ULT it is currently running
  /// finishes in place (stacks cannot migrate). Re-enabling immediately
  /// re-checks the pools for queued work.
  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Called by pools when work arrives: schedule a dispatch if idle.
  void notify_work();

  /// Occupy this ES for `d` of virtual time on behalf of the running ULT.
  /// Must be called while `ult` is the ULT currently running here.
  void begin_compute(sim::DurationNs d, Ult& ult);

  /// Re-enter a previously suspended ULT (after compute/unblock).
  void resume_here(Ult& ult);

  [[nodiscard]] std::uint64_t ults_dispatched() const noexcept {
    return dispatched_;
  }
  [[nodiscard]] sim::DurationNs busy_time() const noexcept {
    return busy_time_;
  }

  /// The xstream currently executing a ULT on this thread, if any.
  static Xstream* current() noexcept;
  /// The ULT currently executing on this thread, if any.
  static Ult* current_ult() noexcept;

 private:
  friend class Runtime;

  void try_dispatch();
  void dispatch_one();
  [[nodiscard]] Ult* pop_ready();
  void run_ult(Ult& ult);
  void postprocess(Ult& ult);

  Runtime& runtime_;
  std::uint32_t rank_;
  std::vector<Pool*> pools_;
  bool busy_ = false;
  bool enabled_ = true;
  bool dispatch_scheduled_ = false;
  std::uint64_t dispatched_ = 0;
  sim::DurationNs busy_time_ = 0;
};

}  // namespace sym::abt
