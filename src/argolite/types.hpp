// argolite/types.hpp
//
// Shared type definitions for argolite, the Argobots-model user-level
// threading library. Argolite decouples work (ULTs) from the execution
// resources that run it (execution streams, "xstreams"), exactly as the
// paper's §III-B1 describes for Argobots.
#pragma once

#include <cstdint>

namespace sym::abt {

class Ult;
class Pool;
class Xstream;
class Runtime;

/// Identifier for a ULT-local storage key (see Runtime / this_ult).
using KeyId = std::uint32_t;

enum class UltState : std::uint8_t {
  kReady,      ///< queued in a pool, waiting for an xstream
  kRunning,    ///< currently executing on an xstream
  kComputing,  ///< occupying an xstream for a span of virtual time
  kBlocked,    ///< waiting on a sync object / network / timer
  kFinished,   ///< entry function returned
};

/// Virtual cost of one scheduler dispatch (pop + context switch) in ns.
/// Measured user-level context switches are in the 100-300 ns range.
inline constexpr std::uint64_t kDispatchOverheadNs = 150;

}  // namespace sym::abt
