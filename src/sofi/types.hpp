// sofi/types.hpp
//
// Simulated OpenFabrics-style network interface ("sofi"). Shared types.
//
// sofi models the properties of libfabric that matter to the paper:
//  * eager message delivery with latency + bandwidth + NIC serialization,
//  * one-sided RDMA transfers,
//  * a per-endpoint completion queue drained by a progress loop in
//    *bounded* reads (`max_events`), which is exactly the mechanism behind
//    the paper's `num_ofi_events_read` PVAR and the Fig. 12 backlog study.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "simkit/time.hpp"

namespace sym::ofi {

/// Flat address of an endpoint within the fabric.
using EpAddr = std::uint32_t;

inline constexpr EpAddr kInvalidAddr = ~0u;

/// Completion/event kinds surfaced through an endpoint's completion queue.
enum class CqKind : std::uint8_t {
  kRecv,          ///< an eager message arrived (payload attached)
  kSendComplete,  ///< a post_send's last byte left the local NIC
  kRdmaComplete,  ///< a post_rdma transfer finished (initiator side)
};

/// An entry in a completion queue.
struct CqEntry {
  CqKind kind{};
  EpAddr peer = kInvalidAddr;    ///< remote endpoint involved
  std::uint64_t tag = 0;         ///< application demux tag (kRecv only)
  std::uint64_t context = 0;     ///< sender-supplied op context
  std::uint64_t bytes = 0;       ///< wire bytes of the operation
  sim::TimeNs enqueued_at = 0;   ///< when the event entered the CQ
  std::vector<std::byte> data;   ///< payload (kRecv only)
  /// Simulated registered-memory attachment: content of an RDMA-exposed
  /// buffer referenced by the message. It rides along for content purposes
  /// but contributes nothing to the wire cost — the receiver must issue a
  /// bulk transfer (post_rdma) before touching it, which is where the bytes
  /// are charged. This models Mercury bulk handles over real RDMA.
  std::shared_ptr<const void> attachment;
};

}  // namespace sym::ofi
