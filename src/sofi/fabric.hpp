// sofi/fabric.hpp
//
// The fabric connects endpoints across the simulated cluster and implements
// the transfer timing model:
//
//   eager send:  src-NIC serialization (bytes/bw) + link latency -> recv
//                event at the destination; send-completion event at the
//                source when the last byte leaves the NIC.
//   RDMA:        request latency + data-source NIC serialization + return
//                latency -> completion at the initiator.
//
// Intra-node communication bypasses the NIC (memory bandwidth, no
// contention), which models colocated client/provider deployments like the
// paper's ior+Mobject study.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "simkit/cluster.hpp"
#include "sofi/completion_queue.hpp"
#include "sofi/types.hpp"

namespace sym::ofi {

class Fabric;

/// A communication endpoint owned by one simulated process.
class Endpoint {
 public:
  Endpoint(Fabric& fabric, EpAddr addr, sim::Process& process);
  ~Endpoint();
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  [[nodiscard]] EpAddr addr() const noexcept { return addr_; }
  [[nodiscard]] sim::Process& process() noexcept { return process_; }
  [[nodiscard]] CompletionQueue& cq() noexcept { return cq_; }
  [[nodiscard]] Fabric& fabric() noexcept { return fabric_; }

  /// Two-sided eager send. The receiver gets a kRecv entry carrying `data`;
  /// the sender gets a kSendComplete entry with `context`.
  ///
  /// `wire_bytes` overrides the number of bytes charged to the NIC/link
  /// model; 0 means data.size(). The RPC layer uses this to model
  /// eager-buffer truncation: the full payload object travels with the
  /// message for content purposes, but only the eager portion is charged
  /// here — the remainder is fetched with post_rdma (the paper's "internal
  /// RDMA" path for overflowing request metadata).
  void post_send(EpAddr dst, std::uint64_t tag, std::vector<std::byte> data,
                 std::uint64_t context, std::uint64_t wire_bytes = 0,
                 std::shared_ptr<const void> attachment = nullptr);

  /// One-sided transfer of `bytes` between this endpoint and `peer` (the
  /// direction does not change the timing model). Initiator receives a
  /// kRdmaComplete entry with `context`; the peer is not notified.
  void post_rdma(EpAddr peer, std::uint64_t bytes, std::uint64_t context);

  // --- statistics (exported as PVARs by the RPC layer) ---
  [[nodiscard]] std::uint64_t sends_posted() const noexcept { return sends_; }
  [[nodiscard]] std::uint64_t recvs_delivered() const noexcept {
    return recvs_;
  }
  [[nodiscard]] std::uint64_t rdma_ops() const noexcept { return rdma_ops_; }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_;
  }
  [[nodiscard]] std::uint64_t bytes_rdma() const noexcept {
    return bytes_rdma_;
  }

 private:
  friend class Fabric;

  Fabric& fabric_;
  EpAddr addr_;
  sim::Process& process_;
  CompletionQueue cq_;
  std::uint64_t sends_ = 0;
  std::uint64_t recvs_ = 0;
  std::uint64_t rdma_ops_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_rdma_ = 0;
};

class Fabric {
 public:
  explicit Fabric(sim::Cluster& cluster) : cluster_(cluster) {}
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Create an endpoint for `process`. Addresses are dense indices.
  Endpoint& create_endpoint(sim::Process& process);

  [[nodiscard]] Endpoint& endpoint(EpAddr addr) { return *endpoints_.at(addr); }
  [[nodiscard]] std::size_t endpoint_count() const noexcept {
    return endpoints_.size();
  }
  [[nodiscard]] sim::Cluster& cluster() noexcept { return cluster_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return cluster_.engine(); }

  /// Fixed per-message software overhead (driver + protocol processing).
  [[nodiscard]] sim::DurationNs per_message_overhead() const noexcept {
    return per_message_overhead_;
  }
  void set_per_message_overhead(sim::DurationNs d) noexcept {
    per_message_overhead_ = d;
  }

 private:
  friend class Endpoint;

  /// Timing core shared by sends and RDMA. Returns (src_complete, arrival).
  struct TransferTiming {
    sim::TimeNs src_complete;
    sim::TimeNs arrival;
  };
  TransferTiming plan_transfer(sim::NodeId src, sim::NodeId dst,
                               std::uint64_t bytes);

  sim::Cluster& cluster_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  sim::DurationNs per_message_overhead_ = sim::nsec(1000);
};

}  // namespace sym::ofi
