#include "sofi/fabric.hpp"

#include <cassert>
#include <utility>

#include "argolite/pool.hpp"
#include "argolite/runtime.hpp"
#include "argolite/ult.hpp"

namespace sym::ofi {

// ---------------------------------------------------------------------------
// CompletionQueue
// ---------------------------------------------------------------------------

void CompletionQueue::push(CqEntry entry) {
  entry.enqueued_at = engine_.now();
  q_.push_back(std::move(entry));
  ++total_pushed_;
  if (q_.size() > high_watermark_) high_watermark_ = q_.size();
  if (waiter_ != nullptr) {
    abt::Ult* w = waiter_;
    waiter_ = nullptr;
    if (waiter_timeout_ != 0) {
      engine_.cancel(waiter_timeout_);
      waiter_timeout_ = 0;
    }
    w->pool().wake_blocked(*w);
  }
}

std::size_t CompletionQueue::read(std::vector<CqEntry>& out,
                                  std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && !q_.empty()) {
    out.push_back(std::move(q_.front()));
    q_.pop_front();
    ++n;
  }
  return n;
}

bool CompletionQueue::wait_nonempty(sim::DurationNs timeout) {
  if (!q_.empty()) return true;
  abt::Ult* u = abt::self();
  assert(u != nullptr && "wait_nonempty() outside ULT context");
  assert(waiter_ == nullptr && "only one CQ waiter supported");
  waiter_ = u;
  waiter_timeout_ = engine_.after(timeout, [this, u] {
    // Timed out: clear waiter state and wake the ULT.
    waiter_ = nullptr;
    waiter_timeout_ = 0;
    u->pool().wake_blocked(*u);
  });
  abt::block_self();
  return !q_.empty();
}

// ---------------------------------------------------------------------------
// Endpoint
// ---------------------------------------------------------------------------

Endpoint::Endpoint(Fabric& fabric, EpAddr addr, sim::Process& process)
    : fabric_(fabric), addr_(addr), process_(process), cq_(fabric.engine()) {
  // The endpoint's completion queue and counters are owned by the lane that
  // owns its node: delivery events are always scheduled onto that lane.
  sim::debug::bind_home_lane(
      this, fabric.engine().lane_for_node(process.node()));
}

Endpoint::~Endpoint() { sim::debug::unbind_home_lane(this); }

void Endpoint::post_send(EpAddr dst, std::uint64_t tag,
                         std::vector<std::byte> data, std::uint64_t context,
                         std::uint64_t wire_bytes,
                         std::shared_ptr<const void> attachment) {
  Endpoint& peer = fabric_.endpoint(dst);
  sim::debug::assert_home_lane(this, "Endpoint::post_send");
  const std::uint64_t bytes =
      wire_bytes != 0 ? wire_bytes : static_cast<std::uint64_t>(data.size());
  ++sends_;
  bytes_sent_ += bytes;

  const auto timing =
      fabric_.plan_transfer(process_.node(), peer.process_.node(), bytes);
  auto& engine = fabric_.engine();

  // Sender-side completion when the last byte leaves the NIC.
  engine.at(timing.src_complete, [this, dst, context, bytes] {
    cq_.push(CqEntry{.kind = CqKind::kSendComplete,
                     .peer = dst,
                     .tag = 0,
                     .context = context,
                     .bytes = bytes,
                     .data = {},
                     .attachment = nullptr});
  });

  // Receiver-side delivery: scheduled onto the lane that owns the
  // destination node, so all peer-state mutation is lane-local. For a
  // cross-lane send this routes through the window mailbox — safe, because
  // arrival is at least one link latency (>= the engine lookahead) away.
  // The payload vector is move-captured straight into the (move-only)
  // callback: no shared_ptr wrap, no per-message heap traffic beyond the
  // buffer the caller already owns.
  const EpAddr src = addr_;
  engine.at_on(engine.lane_for_node(peer.process_.node()), timing.arrival,
               [&peer, src, tag, context, bytes, data = std::move(data),
                attachment = std::move(attachment)]() mutable {
    sim::debug::assert_home_lane(&peer, "Endpoint recv delivery");
    ++peer.recvs_;
    peer.cq_.push(CqEntry{.kind = CqKind::kRecv,
                          .peer = src,
                          .tag = tag,
                          .context = context,
                          .bytes = bytes,
                          .data = std::move(data),
                          .attachment = std::move(attachment)});
  });
}

void Endpoint::post_rdma(EpAddr peer_addr, std::uint64_t bytes,
                         std::uint64_t context) {
  Endpoint& peer = fabric_.endpoint(peer_addr);
  sim::debug::assert_home_lane(this, "Endpoint::post_rdma");
  ++rdma_ops_;
  bytes_rdma_ += bytes;

  auto& cluster = fabric_.cluster();
  const auto src_node = process_.node();
  const auto peer_node = peer.process_.node();
  auto& engine = fabric_.engine();

  // Request flight to the peer, then data moves through the peer's NIC,
  // then the tail latency back to the initiator.
  const auto request_arrives =
      engine.now() + fabric_.per_message_overhead() +
      cluster.link_latency(src_node, peer_node);

  const auto src_lane = engine.lane_for_node(src_node);
  const auto peer_lane = engine.lane_for_node(peer_node);
  if (src_lane == peer_lane) {
    // The peer's NIC state is owned by the initiator's own lane (always the
    // case for the single-lane engine): reserve it synchronously, exactly
    // as the historical implementation did.
    sim::TimeNs data_done;
    if (src_node == peer_node) {
      const auto xfer = static_cast<sim::DurationNs>(
          static_cast<double>(bytes) / cluster.params().mem_bw_bytes_per_ns);
      data_done = request_arrives + xfer;
    } else {
      data_done = cluster.node(peer_node).reserve_nic(
          request_arrives, bytes, cluster.params().nic_bw_bytes_per_ns);
    }
    const auto complete_at =
        data_done + cluster.link_latency(src_node, peer_node);

    engine.at(complete_at, [this, peer_addr, context, bytes] {
      cq_.push(CqEntry{.kind = CqKind::kRdmaComplete,
                       .peer = peer_addr,
                       .tag = 0,
                       .context = context,
                       .bytes = bytes,
                       .data = {},
                       .attachment = nullptr});
    });
    return;
  }

  // Sharded engine, remote peer: the peer NIC belongs to another lane, so
  // the reservation itself becomes an event on that lane (delivered through
  // the window mailbox — request_arrives is >= one link latency away). The
  // completion is then scheduled back onto the initiator's lane, again at
  // least one link latency in the future.
  auto* cluster_p = &cluster;
  engine.at_on(
      peer_lane, request_arrives,
      [this, cluster_p, src_node, peer_node, peer_addr, context, bytes,
       src_lane] {
        auto& eng = fabric_.engine();
        const auto data_done = cluster_p->node(peer_node).reserve_nic(
            eng.now(), bytes, cluster_p->params().nic_bw_bytes_per_ns);
        const auto complete_at =
            data_done + cluster_p->link_latency(src_node, peer_node);
        eng.at_on(src_lane, complete_at, [this, peer_addr, context, bytes] {
          cq_.push(CqEntry{.kind = CqKind::kRdmaComplete,
                           .peer = peer_addr,
                           .tag = 0,
                           .context = context,
                           .bytes = bytes,
                           .data = {},
                           .attachment = nullptr});
        });
      });
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

Endpoint& Fabric::create_endpoint(sim::Process& process) {
  const auto addr = static_cast<EpAddr>(endpoints_.size());
  endpoints_.push_back(std::make_unique<Endpoint>(*this, addr, process));
  return *endpoints_.back();
}

Fabric::TransferTiming Fabric::plan_transfer(sim::NodeId src, sim::NodeId dst,
                                             std::uint64_t bytes) {
  auto& engine = cluster_.engine();
  const sim::TimeNs start = engine.now() + per_message_overhead_;
  sim::TimeNs src_complete;
  if (src == dst) {
    // Loopback: memory copy, no NIC involvement or contention.
    const auto xfer = static_cast<sim::DurationNs>(
        static_cast<double>(bytes) / cluster_.params().mem_bw_bytes_per_ns);
    src_complete = start + xfer;
  } else {
    src_complete = cluster_.node(src).reserve_nic(
        start, bytes, cluster_.params().nic_bw_bytes_per_ns);
  }
  const sim::TimeNs arrival = src_complete + cluster_.link_latency(src, dst);
  return TransferTiming{src_complete, arrival};
}

}  // namespace sym::ofi
