// sofi/completion_queue.hpp
//
// Completion queue with bounded reads and ULT-blocking wait, mirroring
// fi_cq_read semantics. The bounded read count is what Mercury exports as
// the `num_ofi_events_read` PVAR.
#pragma once

#include <cstdint>
#include <deque>

#include "simkit/engine.hpp"
#include "sofi/types.hpp"

namespace sym::abt {
class Ult;
}

namespace sym::ofi {

class CompletionQueue {
 public:
  explicit CompletionQueue(sim::Engine& engine) : engine_(engine) {}
  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  /// Enqueue an event; wakes a blocked wait_nonempty() caller if present.
  void push(CqEntry entry);

  /// Drain up to `max_events` entries into `out` (appended). Returns the
  /// number read — the value of the `num_ofi_events_read` PVAR.
  std::size_t read(std::vector<CqEntry>& out, std::size_t max_events);

  /// Block the calling ULT until the queue is non-empty or `timeout`
  /// expires. Returns true if the queue is non-empty on return. Only one
  /// waiter at a time is supported (the progress ULT).
  bool wait_nonempty(sim::DurationNs timeout);

  [[nodiscard]] std::size_t size() const noexcept { return q_.size(); }
  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }

  /// Highest queue depth ever observed (a HIGHWATERMARK-class metric).
  [[nodiscard]] std::size_t high_watermark() const noexcept {
    return high_watermark_;
  }
  [[nodiscard]] std::uint64_t total_pushed() const noexcept {
    return total_pushed_;
  }

 private:
  sim::Engine& engine_;
  std::deque<CqEntry> q_;
  std::size_t high_watermark_ = 0;
  std::uint64_t total_pushed_ = 0;
  abt::Ult* waiter_ = nullptr;
  sim::Engine::EventId waiter_timeout_ = 0;
};

}  // namespace sym::ofi
